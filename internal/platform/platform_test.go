package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"Embedded", "CPU1", "CPU2", "GPU"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("got %s", p.Name)
		}
	}
	if _, err := ByName("TPU"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestCapsLadder(t *testing.T) {
	for _, p := range All() {
		caps := p.Caps()
		if len(caps) < 2 {
			t.Fatalf("%s: ladder too short", p.Name)
		}
		if caps[0] != p.PMin || caps[len(caps)-1] != p.PMax {
			t.Errorf("%s: ladder endpoints %g..%g, want %g..%g",
				p.Name, caps[0], caps[len(caps)-1], p.PMin, p.PMax)
		}
		for i := 1; i < len(caps); i++ {
			if math.Abs(caps[i]-caps[i-1]-p.PStep) > 1e-9 {
				t.Errorf("%s: uneven step at %d", p.Name, i)
			}
		}
	}
}

func TestCPU2SpeedRatioMatchesFig3(t *testing.T) {
	p := CPU2()
	ratio := p.Speed(100) / p.Speed(40)
	if math.Abs(ratio-2.0) > 0.02 {
		t.Errorf("CPU2 speed(100)/speed(40) = %.3f, want ~2.0 (Fig. 3)", ratio)
	}
}

func TestSpeedMonotone(t *testing.T) {
	for _, p := range All() {
		prev := 0.0
		for _, c := range p.Caps() {
			s := p.Speed(c)
			if s <= prev {
				t.Errorf("%s: speed not strictly increasing at %gW", p.Name, c)
			}
			prev = s
		}
	}
}

func TestSpeedClampsOutOfRange(t *testing.T) {
	p := CPU1()
	if p.Speed(p.PMin-100) != p.Speed(p.PMin) {
		t.Error("below-range cap not clamped")
	}
	if p.Speed(p.PMax+100) != p.Speed(p.PMax) {
		t.Error("above-range cap not clamped")
	}
}

func TestInferencePowerSaturates(t *testing.T) {
	p := CPU2()
	if p.InferencePower(100) != p.InferencePower(p.DrawCeil) {
		t.Error("draw should saturate at the ceiling")
	}
	if p.InferencePower(40) >= p.InferencePower(60) {
		t.Error("draw should rise while the cap binds")
	}
	if p.InferencePower(50) > 50 {
		t.Error("draw must not exceed the cap")
	}
}

func TestFits(t *testing.T) {
	e := Embedded()
	if e.Fits(3.0) {
		t.Error("3GB model should not fit the 2GB board")
	}
	if !e.Fits(0.4) {
		t.Error("RNN should fit the embedded board")
	}
}

func TestActuatorSnapAndClamp(t *testing.T) {
	a := NewActuator(CPU1())
	if got := a.Snap(11.2); got != 10 {
		t.Errorf("Snap(11.2) = %g, want 10", got)
	}
	if got := a.Snap(11.3); got != 12.5 {
		t.Errorf("Snap(11.3) = %g, want 12.5", got)
	}
	if got := a.Snap(1000); got != 45 {
		t.Errorf("Snap(1000) = %g, want 45", got)
	}
	if got := a.Snap(0); got != 10 {
		t.Errorf("Snap(0) = %g, want 10", got)
	}
}

func TestActuatorSetCap(t *testing.T) {
	a := NewActuator(CPU1())
	if a.Cap() != 45 {
		t.Errorf("initial cap %g, want PMax", a.Cap())
	}
	if err := a.SetCap(20); err != nil {
		t.Fatal(err)
	}
	if a.Cap() != 20 {
		t.Errorf("cap = %g", a.Cap())
	}
	if err := a.SetCap(5); err == nil {
		t.Error("expected error for cap below range")
	}
	if err := a.SetCap(100); err == nil {
		t.Error("expected error for cap above range")
	}
}

func TestActuatorCountsSwitches(t *testing.T) {
	a := NewActuator(CPU1())
	_ = a.SetCap(20)
	_ = a.SetCap(20) // no transition
	_ = a.SetCap(25)
	if a.Switches() != 2 {
		t.Errorf("switches = %d, want 2", a.Switches())
	}
}

func TestActuatorSnapProperty(t *testing.T) {
	a := NewActuator(CPU2())
	f := func(w float64) bool {
		w = math.Mod(math.Abs(w), 200)
		snapped := a.Snap(w)
		// Snapped value must be a ladder rung and no other rung may be
		// strictly closer.
		found := false
		for _, c := range a.Caps() {
			if c == snapped {
				found = true
			}
			if math.Abs(c-w) < math.Abs(snapped-w)-1e-9 {
				return false
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqTable(t *testing.T) {
	p := GPUPlatform()
	ft := BuildFreqTable(p, 26)
	if ft.Len() != 26 {
		t.Fatalf("len = %d", ft.Len())
	}
	// Ascending power, ascending frequency.
	for i := 1; i < ft.Len(); i++ {
		if ft.Entry(i).Power < ft.Entry(i-1).Power {
			t.Error("power not ascending")
		}
		if ft.Entry(i).Freq < ft.Entry(i-1).Freq {
			t.Error("frequency not ascending with power")
		}
	}
	// ClockForCap returns the fastest clock under the cap.
	e := ft.ClockForCap(150)
	if e.Power > 150 {
		t.Errorf("clock draws %gW over the 150W cap", e.Power)
	}
	if next := ft.PowerForClock(e.Freq + 100); next.Power <= 150 && next.Freq > e.Freq {
		t.Error("a faster clock fits the cap, ClockForCap was not maximal")
	}
	// A cap below the whole table returns the slowest clock.
	if got := ft.ClockForCap(1); got != ft.Entry(0) {
		t.Error("tiny cap should return the floor clock")
	}
}

func TestGPUQuieterThanCPUs(t *testing.T) {
	if GPUPlatform().BaselineNoise >= CPU1().BaselineNoise {
		t.Error("paper: GPU has significantly lower fluctuation than CPUs")
	}
}
