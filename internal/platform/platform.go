// Package platform models the four hardware platforms of Table 1 (Embedded,
// CPU1 laptop, CPU2 server, GPU) and their power-management knobs.
//
// On real hardware ALERT actuates Intel RAPL on CPUs and a PyNVML
// power–frequency lookup table on GPUs (§4). This package reproduces the
// *interface contract* those mechanisms give the runtime: a discrete ladder
// of power caps, each implying a deterministic compute speed, plus a
// platform idle power that dominates energy between periodic inputs.
//
// The power→speed law is calibrated so the shape of the paper's Figure 3
// holds: raising the CPU2 cap from 40 W to 100 W doubles speed, the
// energy-per-period curve is non-monotonic with its minimum at the lowest
// cap and its maximum in the middle of the range, and most caps are
// Pareto-suboptimal. We use the classic cube-root frequency/power relation
// speed ∝ (P − P₀)^(1/3), where P₀ absorbs static (leakage + uncore) power.
package platform

import (
	"fmt"
	"math"
)

// Kind distinguishes the two accelerator classes ALERT manages.
type Kind int

const (
	// CPU platforms are actuated through RAPL-style power caps.
	CPU Kind = iota
	// GPU platforms are actuated through a power–frequency lookup table.
	GPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Platform describes one machine from Table 1 together with its calibrated
// simulation parameters. Platforms are immutable after construction; all
// mutable actuation state lives in PowerActuator.
type Platform struct {
	// Name is the paper's identifier: "Embedded", "CPU1", "CPU2", "GPU".
	Name string
	// Kind selects the actuation mechanism.
	Kind Kind

	// PMin and PMax bound the feasible power-cap range in watts.
	PMin, PMax float64
	// PStep is the cap granularity: 2.5 W on the laptop, 5 W on the server
	// and GPU platforms (§4).
	PStep float64
	// PStatic is P₀ in the speed law; caps at or below it make no forward
	// progress and are excluded from the ladder.
	PStatic float64

	// DefaultCap is the sustained power the machine settles at when no cap
	// is enforced — the "system default" setting the App-only baseline and
	// the Fig. 6 application-level oracle run under. Laptops sustain well
	// below their burst ceiling; servers and GPUs sustain at the top.
	DefaultCap float64

	// DrawCeil is the highest power the inference workload can actually
	// consume: caps above it stop binding. Speed still improves past it
	// (higher caps admit more aggressive turbo bursts without raising the
	// sustained draw), which is what gives Figure 3 its signature shape —
	// energy per period peaks at the ceiling (64 W on CPU2, "the most
	// energy-hungry setting") and falls again toward the top cap while
	// latency keeps improving.
	DrawCeil float64

	// IdlePower is the system power draw while the inference job waits for
	// its next input, with no co-located job running.
	IdlePower float64

	// SpeedScore is the relative compute throughput at PMax. CPU2 defines
	// 1.0; a model whose reference latency (profiled on CPU2 at PMax) is L
	// runs in L/SpeedScore on this platform at PMax.
	SpeedScore float64

	// MemGB bounds model residency: models whose MemGB exceeds this limit
	// fail to load, which is why Table 2's image and QA tasks run out of
	// memory on the Embedded board (Fig. 4 caption).
	MemGB float64

	// BaselineNoise is the lognormal sigma of per-input latency noise in
	// the contention-free environment. GPUs run noticeably quieter than
	// CPUs (§5.2: "The GPU experiences significantly lower dynamic
	// fluctuation"), which is why the static oracle nearly matches ALERT
	// there.
	BaselineNoise float64
}

// Embedded returns the ARM Cortex A-15 board (2 GB DDR3). Only the RNN
// sentence-prediction task fits in memory; everything else OOMs, matching
// Figure 4.
func Embedded() *Platform {
	return &Platform{
		Name:          "Embedded",
		Kind:          CPU,
		PMin:          5,
		PMax:          15,
		PStep:         2.5,
		PStatic:       2.0,
		DefaultCap:    12.5,
		DrawCeil:      15,
		IdlePower:     2.5,
		SpeedScore:    0.06,
		MemGB:         2,
		BaselineNoise: 0.022,
	}
}

// CPU1 returns the Core i7 laptop (16 GB DDR4).
func CPU1() *Platform {
	return &Platform{
		Name:          "CPU1",
		Kind:          CPU,
		PMin:          10,
		PMax:          45,
		PStep:         2.5,
		PStatic:       6.5,
		DefaultCap:    30,
		DrawCeil:      45,
		IdlePower:     4.5,
		SpeedScore:    1.0,
		MemGB:         16,
		BaselineNoise: 0.020,
	}
}

// CPU2 returns the Xeon Gold 6126 server (192 GB DDR4). Its cap range and
// the 2x speed ratio between 100 W and 40 W match Figure 3. PStatic is
// derived from that ratio: (100−P₀) = 8·(40−P₀) ⇒ P₀ ≈ 31.4 W.
func CPU2() *Platform {
	return &Platform{
		Name:          "CPU2",
		Kind:          CPU,
		PMin:          40,
		PMax:          100,
		PStep:         5,
		PStatic:       31.43,
		DefaultCap:    100,
		DrawCeil:      64,
		IdlePower:     26,
		SpeedScore:    1.0,
		MemGB:         192,
		BaselineNoise: 0.018,
	}
}

// GPUPlatform returns the RTX 2080 machine. Caps map to frequency steps via
// FreqTable; the quieter noise floor reflects the paper's observation that
// the GPU sees far less run-to-run variance.
func GPUPlatform() *Platform {
	return &Platform{
		Name:          "GPU",
		Kind:          GPU,
		PMin:          90,
		PMax:          215,
		PStep:         5,
		PStatic:       55,
		DefaultCap:    215,
		DrawCeil:      160,
		IdlePower:     38,
		SpeedScore:    7.5,
		MemGB:         8,
		BaselineNoise: 0.006,
	}
}

// All returns the four platforms in Table 1 order.
func All() []*Platform {
	return []*Platform{Embedded(), CPU1(), CPU2(), GPUPlatform()}
}

// ByName looks a platform up by its Table 1 identifier.
func ByName(name string) (*Platform, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("platform: unknown platform %q", name)
}

// Caps returns the discrete cap ladder from PMin to PMax inclusive in PStep
// increments. The slice is freshly allocated on each call so callers may
// take ownership.
func (p *Platform) Caps() []float64 {
	var caps []float64
	// Walk in integer step counts to avoid accumulating float error over
	// long ladders (the GPU ladder has 26 rungs).
	n := int(math.Round((p.PMax-p.PMin)/p.PStep)) + 1
	for i := 0; i < n; i++ {
		caps = append(caps, p.PMin+float64(i)*p.PStep)
	}
	return caps
}

// Speed returns the relative compute speed at the given cap, normalized so
// Speed(PMax) == SpeedScore. Caps below PMin are treated as PMin; the
// actuator never requests them, but defensive clamping keeps the math total.
func (p *Platform) Speed(cap float64) float64 {
	cap = clamp(cap, p.PMin, p.PMax)
	return p.SpeedScore * math.Cbrt((cap-p.PStatic)/(p.PMax-p.PStatic))
}

// LatencyScale returns the multiplier applied to a model's reference latency
// (profiled on CPU2 at PMax) when run on this platform at the given cap.
func (p *Platform) LatencyScale(cap float64) float64 {
	ref := CPU2()
	return ref.SpeedScore / p.Speed(cap) * 1.0 // reference speed is 1.0 by construction
}

// InferencePower returns the power actually drawn while inferring under the
// given cap: the cap (shaved by the small headroom the governor leaves)
// while it binds, saturating at the workload's draw ceiling above that.
func (p *Platform) InferencePower(cap float64) float64 {
	const headroom = 0.98
	w := clamp(cap, p.PMin, p.PMax)
	if w > p.DrawCeil {
		w = p.DrawCeil
	}
	return w * headroom
}

// Fits reports whether a model with the given resident-set size can load.
func (p *Platform) Fits(memGB float64) bool {
	return memGB <= p.MemGB
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
