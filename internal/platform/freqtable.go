package platform

import "sort"

// FreqEntry is one row of a GPU power–frequency lookup table: holding the
// core clock at Freq MHz draws roughly Power watts under inference load.
type FreqEntry struct {
	Freq  float64 // MHz
	Power float64 // W
}

// FreqTable is the PyNVML-style mechanism ALERT uses on GPUs (§4): since
// GPUs expose clocks rather than direct power caps, the runtime builds a
// table mapping feasible clocks to measured power and then treats "set cap
// W" as "apply the fastest clock whose power is at most W".
type FreqTable struct {
	entries []FreqEntry // ascending by power
}

// BuildFreqTable constructs the table for a GPU platform by sweeping the
// clock range. The power model inverts the platform speed law: a clock at
// fraction f of maximum draws PStatic + f³·(PMax−PStatic), the same
// cube-law used for CPUs, which measured RTX 2080 sweeps approximate well.
func BuildFreqTable(p *Platform, steps int) *FreqTable {
	const fMax = 1900.0 // MHz, RTX 2080 boost ceiling
	const fMin = 600.0
	if steps < 2 {
		steps = 2
	}
	t := &FreqTable{}
	for i := 0; i < steps; i++ {
		f := fMin + (fMax-fMin)*float64(i)/float64(steps-1)
		frac := f / fMax
		pw := p.PStatic + frac*frac*frac*(p.PMax-p.PStatic)
		t.entries = append(t.entries, FreqEntry{Freq: f, Power: pw})
	}
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].Power < t.entries[j].Power })
	return t
}

// Len returns the number of table rows.
func (t *FreqTable) Len() int { return len(t.entries) }

// Entry returns the i-th row (ascending power order).
func (t *FreqTable) Entry(i int) FreqEntry { return t.entries[i] }

// ClockForCap returns the highest frequency whose power draw fits under the
// cap, or the lowest available clock when even that exceeds the cap (the
// hardware cannot stop the clock entirely).
func (t *FreqTable) ClockForCap(cap float64) FreqEntry {
	best := t.entries[0]
	for _, e := range t.entries {
		if e.Power <= cap {
			best = e
		} else {
			break
		}
	}
	return best
}

// PowerForClock returns the tabulated draw of the slowest clock at or above
// freq, or the highest row when freq exceeds the table.
func (t *FreqTable) PowerForClock(freq float64) FreqEntry {
	for _, e := range t.entries {
		if e.Freq >= freq {
			return e
		}
	}
	return t.entries[len(t.entries)-1]
}
