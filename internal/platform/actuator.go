package platform

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// PowerActuator is the runtime-facing knob: the ALERT controller requests a
// cap, the actuator clamps it onto the platform's discrete ladder and
// reports what it actually applied. On real hardware this is the RAPL MSR
// write path (CPUs) or the PyNVML application-clock call (GPUs); here it is
// the simulation's single mutation point for power state.
//
// The implementation is safe for concurrent use: the measurement thread
// reads the cap while the controller thread updates it.
type PowerActuator struct {
	mu   sync.RWMutex
	p    *Platform
	caps []float64
	cur  float64

	// switches counts cap changes, which back the controller-overhead
	// accounting (§4 reports 0.6–1.7 % combined scheduler+switch cost).
	switches int
}

// NewActuator returns an actuator initialized to the platform's maximum cap,
// which is how the machines boot (no limit enforced).
func NewActuator(p *Platform) *PowerActuator {
	return &PowerActuator{p: p, caps: p.Caps(), cur: p.PMax}
}

// Platform returns the platform this actuator drives.
func (a *PowerActuator) Platform() *Platform { return a.p }

// Caps returns the discrete settings ladder (ascending).
func (a *PowerActuator) Caps() []float64 {
	out := make([]float64, len(a.caps))
	copy(out, a.caps)
	return out
}

// SetCap requests a power cap. The request is snapped to the nearest ladder
// rung; requests outside the feasible range are an error because they
// indicate a controller bug (the controller enumerates the ladder itself).
func (a *PowerActuator) SetCap(w float64) error {
	if w < a.p.PMin-a.p.PStep/2 || w > a.p.PMax+a.p.PStep/2 {
		return fmt.Errorf("platform: cap %.1fW outside [%.1f, %.1f] on %s",
			w, a.p.PMin, a.p.PMax, a.p.Name)
	}
	snapped := a.Snap(w)
	a.mu.Lock()
	defer a.mu.Unlock()
	if snapped != a.cur {
		a.switches++
	}
	a.cur = snapped
	return nil
}

// Cap returns the currently applied cap.
func (a *PowerActuator) Cap() float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.cur
}

// Switches returns how many distinct cap transitions have been applied.
func (a *PowerActuator) Switches() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.switches
}

// Snap rounds a wattage onto the nearest ladder rung.
func (a *PowerActuator) Snap(w float64) float64 {
	i := sort.SearchFloat64s(a.caps, w)
	if i == 0 {
		return a.caps[0]
	}
	if i == len(a.caps) {
		return a.caps[len(a.caps)-1]
	}
	if math.Abs(a.caps[i]-w) < math.Abs(w-a.caps[i-1]) {
		return a.caps[i]
	}
	return a.caps[i-1]
}
