package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// BinCounters are the connection/frame/coalescing counters of the binary
// wire listener (internal/netserve's TCP front end). They are the binary
// transport's sibling of NetCounters: where NetCounters count what the
// HTTP surface saw, these count connections, frames, and — the number the
// transport exists for — how many decide requests were coalesced across
// connections into shared DecideBatch flushes. All methods are safe for
// concurrent use.
type BinCounters struct {
	start time.Time

	connsOpened atomic.Int64
	connsClosed atomic.Int64
	framesIn    atomic.Int64
	framesOut   atomic.Int64

	decides        atomic.Int64
	observes       atomic.Int64
	batches        atomic.Int64
	batchDecisions atomic.Int64
	exports        atomic.Int64
	checkpoints    atomic.Int64
	imports        atomic.Int64
	evictions      atomic.Int64

	// coalesceFlushes counts multi-request flushes; coalesced counts the
	// decide requests inside them (decides served alone appear only in
	// decides). coalesced/coalesceFlushes is the realized batch size.
	coalesceFlushes atomic.Int64
	coalesced       atomic.Int64

	rejectedOverload  atomic.Int64
	rejectedDeadline  atomic.Int64
	rejectedDraining  atomic.Int64
	rejectedRestoring atomic.Int64
	rejectedHopeless  atomic.Int64
	badFrames         atomic.Int64

	// reqNanos accumulates decide latency from frame decode to response
	// write (admission wait and coalescing delay included).
	reqNanos atomic.Int64
	reqCount atomic.Int64
	maxNanos atomic.Int64
}

// NewBinCounters returns zeroed counters with the uptime clock started.
func NewBinCounters() *BinCounters {
	return &BinCounters{start: time.Now()}
}

// RecordConnOpen counts an accepted connection.
func (c *BinCounters) RecordConnOpen() { c.connsOpened.Add(1) }

// RecordConnClose counts a closed connection.
func (c *BinCounters) RecordConnClose() { c.connsClosed.Add(1) }

// RecordFrameIn counts a frame read off a connection.
func (c *BinCounters) RecordFrameIn() { c.framesIn.Add(1) }

// RecordFrameOut counts a frame written to a connection.
func (c *BinCounters) RecordFrameOut() { c.framesOut.Add(1) }

// RecordDecide folds in one served decide and its frame-to-frame latency.
func (c *BinCounters) RecordDecide(d time.Duration) {
	c.decides.Add(1)
	c.recordLatency(d)
}

// RecordObserve folds in one accepted observe.
func (c *BinCounters) RecordObserve() { c.observes.Add(1) }

// RecordBatch folds in one client-sent batch frame and its size.
func (c *BinCounters) RecordBatch(size int) {
	c.batches.Add(1)
	c.batchDecisions.Add(int64(size))
}

// RecordCoalesce folds in one multi-request flush: size decide requests
// from possibly many connections served by a single DecideBatch.
func (c *BinCounters) RecordCoalesce(size int) {
	c.coalesceFlushes.Add(1)
	c.coalesced.Add(int64(size))
}

// RecordExport folds in one served export (snapshot + remove).
func (c *BinCounters) RecordExport() { c.exports.Add(1) }

// RecordCheckpoint folds in one served checkpoint read.
func (c *BinCounters) RecordCheckpoint() { c.checkpoints.Add(1) }

// RecordImport folds in one served session import.
func (c *BinCounters) RecordImport() { c.imports.Add(1) }

// RecordEviction folds in one served eviction.
func (c *BinCounters) RecordEviction() { c.evictions.Add(1) }

// RecordRejectOverload counts a 429 error frame: admission queue full.
func (c *BinCounters) RecordRejectOverload() { c.rejectedOverload.Add(1) }

// RecordRejectDeadline counts a request whose Spec deadline expired while
// it waited at the admission gate.
func (c *BinCounters) RecordRejectDeadline() { c.rejectedDeadline.Add(1) }

// RecordRejectDraining counts a request refused during shutdown drain.
func (c *BinCounters) RecordRejectDraining() { c.rejectedDraining.Add(1) }

// RecordRejectRestoring counts a request shed while its stream was
// restoring after a failover.
func (c *BinCounters) RecordRejectRestoring() { c.rejectedRestoring.Add(1) }

// RecordRejectHopeless counts a request the SLO shedder refused because
// its deadline was predicted unmeetable at the saturated gate.
func (c *BinCounters) RecordRejectHopeless() { c.rejectedHopeless.Add(1) }

// RecordBadFrame counts a frame that parsed but could not be served
// (unknown type, malformed body, unsupported version).
func (c *BinCounters) RecordBadFrame() { c.badFrames.Add(1) }

func (c *BinCounters) recordLatency(d time.Duration) {
	c.reqNanos.Add(int64(d))
	c.reqCount.Add(1)
	for {
		cur := c.maxNanos.Load()
		if int64(d) <= cur || c.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// BinSnapshot is a point-in-time view of the binary listener's counters,
// served inside GET /v1/stats; the JSON field names are a stable wire
// contract and Duration fields marshal as integer nanoseconds.
type BinSnapshot struct {
	// ConnsOpened/ConnsClosed count accepted and closed connections;
	// their difference is the live connection count.
	ConnsOpened int64 `json:"conns_opened"`
	ConnsClosed int64 `json:"conns_closed"`
	// FramesIn/FramesOut count frames read and written.
	FramesIn  int64 `json:"frames_in"`
	FramesOut int64 `json:"frames_out"`
	// Decides counts served decide frames; Batches counts client-sent
	// batch frames and BatchDecisions the decisions inside them.
	Decides        int64 `json:"decides"`
	Observes       int64 `json:"observes"`
	Batches        int64 `json:"batches"`
	BatchDecisions int64 `json:"batch_decisions"`
	// CoalesceFlushes counts server-side multi-request flushes and
	// Coalesced the decide requests they served: decides that crossed the
	// engine as part of a shared DecideBatch rather than alone.
	CoalesceFlushes int64 `json:"coalesce_flushes"`
	Coalesced       int64 `json:"coalesced"`
	// Stream migration ops served over the binary transport.
	Exports     int64 `json:"exports"`
	Checkpoints int64 `json:"checkpoints"`
	Imports     int64 `json:"imports"`
	Evictions   int64 `json:"evictions"`
	// Error-frame counts, same taxonomy as NetSnapshot's rejections.
	RejectedOverload  int64 `json:"rejected_overload"`
	RejectedDeadline  int64 `json:"rejected_deadline"`
	RejectedDraining  int64 `json:"rejected_draining"`
	RejectedRestoring int64 `json:"rejected_restoring,omitempty"`
	RejectedHopeless  int64 `json:"rejected_hopeless,omitempty"`
	BadFrames         int64 `json:"bad_frames"`
	// AvgDecideLatency and MaxDecideLatency run from frame decode to
	// response write, admission wait and coalescing delay included.
	AvgDecideLatency time.Duration `json:"avg_decide_latency_ns"`
	MaxDecideLatency time.Duration `json:"max_decide_latency_ns"`
	// Uptime is the time since the counters were created.
	Uptime time.Duration `json:"uptime_ns"`
}

// Snapshot returns a consistent-enough view for reporting: each field is
// read atomically, though the set is not a single atomic cut.
func (c *BinCounters) Snapshot() BinSnapshot {
	s := BinSnapshot{
		ConnsOpened:       c.connsOpened.Load(),
		ConnsClosed:       c.connsClosed.Load(),
		FramesIn:          c.framesIn.Load(),
		FramesOut:         c.framesOut.Load(),
		Decides:           c.decides.Load(),
		Observes:          c.observes.Load(),
		Batches:           c.batches.Load(),
		BatchDecisions:    c.batchDecisions.Load(),
		CoalesceFlushes:   c.coalesceFlushes.Load(),
		Coalesced:         c.coalesced.Load(),
		Exports:           c.exports.Load(),
		Checkpoints:       c.checkpoints.Load(),
		Imports:           c.imports.Load(),
		Evictions:         c.evictions.Load(),
		RejectedOverload:  c.rejectedOverload.Load(),
		RejectedDeadline:  c.rejectedDeadline.Load(),
		RejectedDraining:  c.rejectedDraining.Load(),
		RejectedRestoring: c.rejectedRestoring.Load(),
		RejectedHopeless:  c.rejectedHopeless.Load(),
		BadFrames:         c.badFrames.Load(),
		MaxDecideLatency:  time.Duration(c.maxNanos.Load()),
		Uptime:            time.Since(c.start),
	}
	if n := c.reqCount.Load(); n > 0 {
		s.AvgDecideLatency = time.Duration(c.reqNanos.Load() / n)
	}
	return s
}

// String renders the snapshot for logs and CLI output.
func (s BinSnapshot) String() string {
	return fmt.Sprintf("conns=%d/%d frames_in=%d frames_out=%d decides=%d coalesced=%d/%d observes=%d rejected_overload=%d avg_latency=%s",
		s.ConnsOpened-s.ConnsClosed, s.ConnsOpened, s.FramesIn, s.FramesOut,
		s.Decides, s.Coalesced, s.CoalesceFlushes, s.Observes,
		s.RejectedOverload, s.AvgDecideLatency)
}
