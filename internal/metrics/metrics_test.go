package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func sample(lat, goal, en, q float64) Sample {
	return Sample{
		Latency: lat, Goal: goal, Energy: en, Quality: q,
		LatencyViolated: lat > goal,
	}
}

func TestRecordAggregates(t *testing.T) {
	r := NewRecord("test")
	r.Add(sample(0.1, 0.2, 2, 0.9))
	r.Add(sample(0.3, 0.2, 4, 0.5))
	if r.N() != 2 {
		t.Fatalf("n = %d", r.N())
	}
	if math.Abs(r.AvgLatency()-0.2) > 1e-12 {
		t.Errorf("avg latency %g", r.AvgLatency())
	}
	if math.Abs(r.AvgEnergy()-3) > 1e-12 {
		t.Errorf("avg energy %g", r.AvgEnergy())
	}
	if math.Abs(r.AvgQuality()-0.7) > 1e-12 {
		t.Errorf("avg quality %g", r.AvgQuality())
	}
	if math.Abs(r.AvgError()-0.3) > 1e-12 {
		t.Errorf("avg error %g", r.AvgError())
	}
	if r.ViolationRate() != 0.5 || r.DeadlineMissRate() != 0.5 {
		t.Errorf("violation rate %g", r.ViolationRate())
	}
}

func TestSettingViolatedTenPercentRule(t *testing.T) {
	r := NewRecord("x")
	for i := 0; i < 90; i++ {
		r.Add(sample(0.1, 0.2, 1, 0.9))
	}
	for i := 0; i < 10; i++ {
		r.Add(sample(0.3, 0.2, 1, 0.9))
	}
	// Exactly 10% is NOT a violation (the rule is "more than 10%").
	if r.SettingViolated() {
		t.Error("10% should not trip the rule")
	}
	r.Add(sample(0.3, 0.2, 1, 0.9))
	if !r.SettingViolated() {
		t.Error("10.9% should trip the rule")
	}
}

func TestSampleViolatedAnyDimension(t *testing.T) {
	cases := []Sample{
		{LatencyViolated: true},
		{AccuracyViolated: true},
		{EnergyViolated: true},
	}
	for i, s := range cases {
		if !s.Violated() {
			t.Errorf("case %d should be violated", i)
		}
	}
	if (Sample{}).Violated() {
		t.Error("clean sample misreported")
	}
}

func TestSeriesAccessors(t *testing.T) {
	r := NewRecord("x")
	r.Add(Sample{Latency: 1, Energy: 2, Quality: 0.5, TrueXi: 1.1})
	r.Add(Sample{Latency: 3, Energy: 4, Quality: 0.7, TrueXi: 1.3})
	if got := r.Latencies(); got[0] != 1 || got[1] != 3 {
		t.Error("latencies")
	}
	if got := r.Energies(); got[0] != 2 || got[1] != 4 {
		t.Error("energies")
	}
	if got := r.Qualities(); got[0] != 0.5 || got[1] != 0.7 {
		t.Error("qualities")
	}
	if got := r.TrueXis(); got[0] != 1.1 || got[1] != 1.3 {
		t.Error("xis")
	}
}

func TestNormalizeExcludesViolatedSettings(t *testing.T) {
	scheme := []SettingResult{
		{Scheme: "S", AvgEnergy: 2, Violated: false},
		{Scheme: "S", AvgEnergy: 99, Violated: true},
		{Scheme: "S", AvgEnergy: 3, Violated: false},
	}
	static := []SettingResult{
		{AvgEnergy: 4}, {AvgEnergy: 4}, {AvgEnergy: 6},
	}
	cell := Normalize(scheme, static, true)
	if cell.ViolatedSettings != 1 || cell.Settings != 3 {
		t.Fatalf("violated/settings = %d/%d", cell.ViolatedSettings, cell.Settings)
	}
	want := (2.0/4 + 3.0/6) / 2
	if math.Abs(cell.NormValue-want) > 1e-12 {
		t.Errorf("norm = %g, want %g", cell.NormValue, want)
	}
	if cell.Scheme != "S" {
		t.Error("scheme label lost")
	}
}

func TestNormalizeErrorMetric(t *testing.T) {
	scheme := []SettingResult{{AvgError: 0.1}}
	static := []SettingResult{{AvgError: 0.2}}
	cell := Normalize(scheme, static, false)
	if math.Abs(cell.NormValue-0.5) > 1e-12 {
		t.Errorf("norm = %g", cell.NormValue)
	}
}

func TestNormalizeAllViolatedIsNaN(t *testing.T) {
	scheme := []SettingResult{{AvgEnergy: 2, Violated: true}}
	static := []SettingResult{{AvgEnergy: 4}}
	if cell := Normalize(scheme, static, true); !math.IsNaN(cell.NormValue) {
		t.Errorf("norm = %g, want NaN", cell.NormValue)
	}
}

func TestNormalizeMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched grids")
		}
	}()
	Normalize([]SettingResult{{}}, nil, true)
}

func TestRecordRatesProperty(t *testing.T) {
	f := func(lats []float64) bool {
		r := NewRecord("p")
		for _, l := range lats {
			l = math.Abs(l)
			r.Add(sample(l, 0.5, 1, 0.9))
		}
		vr := r.ViolationRate()
		return vr >= 0 && vr <= 1 && r.DeadlineMissRate() == vr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
