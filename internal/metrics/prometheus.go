package metrics

import (
	"fmt"
	"io"
	"time"
)

// WritePrometheus renders the serving counters in Prometheus text
// exposition format (version 0.0.4) — the GET /metrics surface of
// internal/netserve. serve counts what the stream table served, net what
// the HTTP surface saw, bin (nil when no binary listener is attached)
// what the binary wire listener saw, and ov (nil when the server has no
// admission gate) the adaptive gate's live state. Rendered by hand: the
// format is a few comment lines plus name/value pairs, and the
// alternative is a client-library dependency for what amounts to
// fmt.Fprintf.
func WritePrometheus(w io.Writer, serve ServeSnapshot, net NetSnapshot, bin *BinSnapshot, ov *OverloadSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	secs := func(d time.Duration) float64 { return d.Seconds() }

	// Stream-table (engine) counters.
	counter("alert_serve_decisions_total", "Decisions served by the stream table.", serve.Decisions)
	counter("alert_serve_observes_total", "Feedback observations folded into sessions.", serve.Observes)
	counter("alert_serve_batches_total", "DecideBatch dispatches.", serve.Batches)
	counter("alert_serve_stream_exports_total", "Sessions migrated out of the stream table.", serve.StreamExports)
	counter("alert_serve_stream_imports_total", "Sessions migrated into the stream table.", serve.StreamImports)
	gauge("alert_serve_streams", "Live per-stream sessions.", float64(serve.Streams))
	gauge("alert_serve_session_bytes", "Aggregate in-memory session footprint.", float64(serve.SessionBytes))
	gauge("alert_serve_decide_latency_avg_seconds", "Mean end-to-end decide latency.", secs(serve.AvgDecideLatency))
	gauge("alert_serve_decide_latency_max_seconds", "Max end-to-end decide latency.", secs(serve.MaxDecideLatency))
	gauge("alert_serve_queue_delay_avg_seconds", "Mean in-pool queue delay (submit to worker pickup).", secs(serve.AvgQueueDelay))
	gauge("alert_serve_queue_delay_max_seconds", "Max in-pool queue delay.", secs(serve.MaxQueueDelay))
	gauge("alert_serve_uptime_seconds", "Time since the serve counters started.", secs(serve.Uptime))

	// HTTP front-end counters.
	counter("alert_http_decides_total", "POST /v1/decide requests served.", net.Decides)
	counter("alert_http_batches_total", "POST /v1/decide-batch requests served.", net.Batches)
	counter("alert_http_batch_decisions_total", "Decisions inside served decide-batch requests.", net.BatchDecisions)
	counter("alert_http_observes_total", "Accepted observe requests.", net.Observes)
	counter("alert_http_reads_total", "Stats/streams reads.", net.Reads)
	counter("alert_http_evictions_total", "Stream evictions via DELETE.", net.Evictions)
	counter("alert_http_exports_total", "Session exports served.", net.Exports)
	counter("alert_http_imports_total", "Session imports served.", net.Imports)
	counter("alert_http_rejected_overload_total", "429s from a full admission queue.", net.RejectedOverload)
	counter("alert_http_rejected_deadline_total", "Requests expired while queued at admission.", net.RejectedDeadline)
	counter("alert_http_rejected_draining_total", "Requests refused during shutdown drain.", net.RejectedDraining)
	counter("alert_http_rejected_restoring_total", "Requests shed while their stream restored after failover.", net.RejectedRestoring)
	counter("alert_http_rejected_hopeless_total", "Requests shed by the SLO shedder: deadline predicted unmeetable.", net.RejectedHopeless)
	counter("alert_http_bad_requests_total", "Malformed requests.", net.BadRequests)
	gauge("alert_http_request_latency_avg_seconds", "Mean decide/batch handler latency.", secs(net.AvgRequestLatency))
	gauge("alert_http_request_latency_max_seconds", "Max decide/batch handler latency.", secs(net.MaxRequestLatency))

	if ov != nil {
		// Adaptive admission gate state.
		b2i := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		gauge("alert_overload_adaptive", "1 when the measured-delay controller may move the limits.", b2i(ov.Adaptive))
		gauge("alert_overload_slo_shed", "1 when hopeless-deadline shedding is enabled.", b2i(ov.SLOShed))
		gauge("alert_overload_inflight_limit", "Effective inflight limit right now.", float64(ov.InflightLimit))
		gauge("alert_overload_queue_limit", "Effective admission queue limit right now.", float64(ov.QueueLimit))
		gauge("alert_overload_inflight", "Requests holding a gate slot.", float64(ov.Inflight))
		gauge("alert_overload_queued", "Requests waiting at the gate.", float64(ov.Queued))
		gauge("alert_overload_queue_delay_ewma_seconds", "EWMA of observed admission queue delay.", secs(ov.QueueDelayEWMA))
		gauge("alert_overload_queue_delay_p50_seconds", "Median observed admission queue delay.", secs(ov.QueueDelayP50))
		gauge("alert_overload_queue_delay_p95_seconds", "95th-percentile observed admission queue delay.", secs(ov.QueueDelayP95))
		gauge("alert_overload_queue_delay_p99_seconds", "99th-percentile observed admission queue delay.", secs(ov.QueueDelayP99))
		gauge("alert_overload_service_ewma_seconds", "EWMA of engine decide service time.", secs(ov.ServiceEWMA))
		gauge("alert_overload_headroom_ewma_seconds", "EWMA of per-request deadline headroom.", secs(ov.HeadroomEWMA))
		gauge("alert_overload_retry_after_seconds", "Current drain estimate hinted on rejections.", secs(ov.RetryAfterHint))
		counter("alert_overload_limit_increases_total", "Control-loop limit increases.", ov.LimitIncreases)
		counter("alert_overload_limit_decreases_total", "Control-loop limit decreases.", ov.LimitDecreases)
		counter("alert_overload_shed_hopeless_total", "Requests shed because their deadline was predicted unmeetable.", ov.ShedHopeless)
		counter("alert_overload_shed_overload_total", "Requests shed because the admission queue was full.", ov.ShedOverload)
		counter("alert_overload_shed_deadline_total", "Requests whose deadline expired while queued.", ov.ShedDeadline)
		counter("alert_overload_shed_draining_total", "Requests refused during shutdown drain.", ov.ShedDraining)
	}

	if bin == nil {
		return
	}
	// Binary wire listener counters.
	counter("alert_binwire_conns_opened_total", "Accepted binary connections.", bin.ConnsOpened)
	counter("alert_binwire_conns_closed_total", "Closed binary connections.", bin.ConnsClosed)
	gauge("alert_binwire_conns", "Live binary connections.", float64(bin.ConnsOpened-bin.ConnsClosed))
	counter("alert_binwire_frames_in_total", "Frames read from binary connections.", bin.FramesIn)
	counter("alert_binwire_frames_out_total", "Frames written to binary connections.", bin.FramesOut)
	counter("alert_binwire_decides_total", "Decide frames served.", bin.Decides)
	counter("alert_binwire_observes_total", "Observe frames accepted.", bin.Observes)
	counter("alert_binwire_batches_total", "Client-sent batch frames served.", bin.Batches)
	counter("alert_binwire_batch_decisions_total", "Decisions inside client-sent batch frames.", bin.BatchDecisions)
	counter("alert_binwire_coalesce_flushes_total", "Cross-connection multi-request flushes.", bin.CoalesceFlushes)
	counter("alert_binwire_coalesced_total", "Decide frames served inside coalesced flushes.", bin.Coalesced)
	counter("alert_binwire_exports_total", "Session exports served over binary.", bin.Exports)
	counter("alert_binwire_checkpoints_total", "Session checkpoints served over binary.", bin.Checkpoints)
	counter("alert_binwire_imports_total", "Session imports served over binary.", bin.Imports)
	counter("alert_binwire_evictions_total", "Stream evictions served over binary.", bin.Evictions)
	counter("alert_binwire_rejected_overload_total", "429 error frames from a full admission queue.", bin.RejectedOverload)
	counter("alert_binwire_rejected_deadline_total", "Requests expired while queued at admission.", bin.RejectedDeadline)
	counter("alert_binwire_rejected_draining_total", "Requests refused during shutdown drain.", bin.RejectedDraining)
	counter("alert_binwire_rejected_restoring_total", "Requests shed while their stream restored after failover.", bin.RejectedRestoring)
	counter("alert_binwire_rejected_hopeless_total", "Requests shed by the SLO shedder: deadline predicted unmeetable.", bin.RejectedHopeless)
	counter("alert_binwire_bad_frames_total", "Frames that parsed but could not be served.", bin.BadFrames)
	gauge("alert_binwire_decide_latency_avg_seconds", "Mean frame-to-frame decide latency.", secs(bin.AvgDecideLatency))
	gauge("alert_binwire_decide_latency_max_seconds", "Max frame-to-frame decide latency.", secs(bin.MaxDecideLatency))
}
