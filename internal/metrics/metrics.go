// Package metrics records per-input measurements for one scheme under one
// constraint setting and aggregates them the way the paper's evaluation
// does: per-input constraint violations, the ">10 % of inputs" rule that
// marks a whole setting as violated (Table 4's superscripts), averages
// normalized against OracleStatic, harmonic means across rows, and whisker
// statistics for the Figure 8/10 plots. The serving layer reports through
// the same package: latency percentiles and SLO attainment over Records
// (the load-generator headline numbers), and ServeCounters for the
// concurrent pool's throughput/latency counters.
//
// Semantics worth pinning down:
//
//   - A Record is single-writer: Add is not safe for concurrent use. The
//     concurrent serving path therefore keeps one Record per stream and
//     merges, while ServeCounters — a handful of atomics — are the only
//     metrics shared across goroutines.
//   - A Sample's violation flags are judged against the requirement that
//     was in force for that input; under scenario spec churn the goal
//     moves mid-stream and the flags follow it.
//   - ServeCounters record completed work: RecordDecide runs before the
//     reply unblocks the caller, so any Stats read that follows a
//     completed Decide observes it; Snapshot reads each counter atomically
//     but is not a single atomic cut across counters.
package metrics

import (
	"math"

	"github.com/alert-project/alert/internal/mathx"
)

// Sample is the measurement of one input.
type Sample struct {
	Latency float64
	Goal    float64 // the adjusted deadline this input had to meet
	Energy  float64
	Quality float64
	TrueXi  float64
	Model   int
	Cap     float64
	// Violated flags per-constraint failures for this input.
	LatencyViolated  bool
	AccuracyViolated bool
	EnergyViolated   bool
}

// Violated reports whether any applicable constraint failed.
func (s Sample) Violated() bool {
	return s.LatencyViolated || s.AccuracyViolated || s.EnergyViolated
}

// Record accumulates samples for one (scheme, setting) run.
type Record struct {
	Scheme  string
	Samples []Sample

	lat, en, q mathx.OnlineStats
	violations int
	misses     int
}

// NewRecord creates an empty record for a scheme.
func NewRecord(scheme string) *Record {
	return &Record{Scheme: scheme}
}

// Add folds one sample in.
func (r *Record) Add(s Sample) {
	r.Samples = append(r.Samples, s)
	r.lat.Add(s.Latency)
	r.en.Add(s.Energy)
	r.q.Add(s.Quality)
	if s.Violated() {
		r.violations++
	}
	if s.LatencyViolated {
		r.misses++
	}
}

// N returns the number of samples.
func (r *Record) N() int { return len(r.Samples) }

// AvgLatency returns the mean measured latency.
func (r *Record) AvgLatency() float64 { return r.lat.Mean() }

// AvgEnergy returns the mean per-input energy in joules.
func (r *Record) AvgEnergy() float64 { return r.en.Mean() }

// AvgQuality returns the mean achieved quality.
func (r *Record) AvgQuality() float64 { return r.q.Mean() }

// AvgError returns 1 − mean quality, the paper's error-rate metric.
func (r *Record) AvgError() float64 { return 1 - r.q.Mean() }

// ViolationRate returns the fraction of inputs that violated any
// applicable constraint.
func (r *Record) ViolationRate() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	return float64(r.violations) / float64(len(r.Samples))
}

// DeadlineMissRate returns the fraction of inputs past their goal.
func (r *Record) DeadlineMissRate() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	return float64(r.misses) / float64(len(r.Samples))
}

// SettingViolated applies the paper's rule: a scheme violates a constraint
// setting when more than 10 % of inputs violate it.
func (r *Record) SettingViolated() bool { return r.ViolationRate() > 0.10 }

// SLOAttainment returns the fraction of inputs that met every applicable
// constraint — the serving-layer headline, 1 − ViolationRate.
func (r *Record) SLOAttainment() float64 { return 1 - r.ViolationRate() }

// LatencyPercentile returns the p-th percentile (0–100) of the measured
// latencies, the p50/p95/p99 numbers the load generator reports. It sorts a
// copy per call; callers wanting several percentiles of a large record
// should go through Latencies and mathx directly.
func (r *Record) LatencyPercentile(p float64) float64 {
	return mathx.Percentile(r.Latencies(), p)
}

// Merge folds every sample of other into r, preserving sample order within
// each record. The load generator uses it to aggregate per-stream records
// into one fleet-wide view.
func (r *Record) Merge(other *Record) {
	for _, s := range other.Samples {
		r.Add(s)
	}
}

// Energies returns the per-input energy series (no copy; treat as
// read-only).
func (r *Record) Energies() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.Energy
	}
	return out
}

// Latencies returns the per-input latency series.
func (r *Record) Latencies() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.Latency
	}
	return out
}

// Qualities returns the per-input quality series.
func (r *Record) Qualities() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.Quality
	}
	return out
}

// TrueXis returns the realized slowdown factors, the series Figure 11
// histograms.
func (r *Record) TrueXis() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = s.TrueXi
	}
	return out
}

// SettingResult is one scheme's aggregate for one constraint setting.
type SettingResult struct {
	Scheme    string
	AvgEnergy float64
	AvgError  float64
	Violated  bool
	// ViolationRate and MissRate echo the per-input rates behind Violated,
	// for reports (scenario sweeps, load tests) that need more resolution
	// than the 10 % rule.
	ViolationRate float64
	MissRate      float64
}

// CellResult aggregates a scheme over a grid of constraint settings into
// one Table 4 cell: the average of per-setting values normalized to
// OracleStatic, with violated settings counted but excluded from the
// average ("those settings' results are not part of the energy average").
type CellResult struct {
	Scheme string
	// NormValue is the mean over non-violated settings of
	// scheme_avg / oraclestatic_avg for the task's objective metric.
	NormValue float64
	// ViolatedSettings is Table 4's superscript.
	ViolatedSettings int
	// Settings is the total number of constraint settings aggregated.
	Settings int
}

// Normalize builds the Table 4 cell for a scheme given parallel slices of
// per-setting results for the scheme and for OracleStatic. useEnergy picks
// the objective metric (true for the minimize-energy task).
func Normalize(scheme []SettingResult, oracleStatic []SettingResult, useEnergy bool) CellResult {
	if len(scheme) != len(oracleStatic) {
		panic("metrics: mismatched setting grids")
	}
	cell := CellResult{Settings: len(scheme)}
	if len(scheme) > 0 {
		cell.Scheme = scheme[0].Scheme
	}
	var sum float64
	var n int
	for i := range scheme {
		if scheme[i].Violated {
			cell.ViolatedSettings++
			continue
		}
		var num, den float64
		if useEnergy {
			num, den = scheme[i].AvgEnergy, oracleStatic[i].AvgEnergy
		} else {
			num, den = scheme[i].AvgError, oracleStatic[i].AvgError
		}
		if den <= 0 || math.IsNaN(num) || math.IsNaN(den) {
			continue
		}
		sum += num / den
		n++
	}
	if n > 0 {
		cell.NormValue = sum / float64(n)
	} else {
		cell.NormValue = math.NaN()
	}
	return cell
}
