package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestServeSnapshotJSONRoundTrip: ServeSnapshot is the GET /v1/stats wire
// payload, so it must marshal with the documented stable field names and
// survive a marshal/unmarshal round trip unchanged.
func TestServeSnapshotJSONRoundTrip(t *testing.T) {
	in := ServeSnapshot{
		Decisions:        12345,
		Observes:         678,
		Batches:          9,
		Streams:          42,
		SessionBytes:     42 * 768,
		StreamExports:    6,
		StreamImports:    4,
		AvgDecideLatency: 1234 * time.Nanosecond,
		MaxDecideLatency: 5 * time.Millisecond,
		Uptime:           3 * time.Hour,
		DecidesPerSec:    1.25e6,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ServeSnapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the snapshot:\n in: %+v\nout: %+v", in, out)
	}

	assertJSONKeys(t, b, []string{
		"decisions", "observes", "batches", "streams", "session_bytes",
		"stream_exports", "stream_imports",
		"avg_decide_latency_ns", "max_decide_latency_ns", "uptime_ns",
		"decides_per_sec",
	})
}

// TestNetSnapshotJSONRoundTrip pins the front-end counter snapshot's wire
// contract the same way.
func TestNetSnapshotJSONRoundTrip(t *testing.T) {
	in := NetSnapshot{
		Decides:           100,
		Batches:           7,
		BatchDecisions:    448,
		Observes:          99,
		Reads:             3,
		Evictions:         2,
		Exports:           8,
		Imports:           6,
		RejectedOverload:  11,
		RejectedDeadline:  1,
		RejectedDraining:  4,
		BadRequests:       5,
		AvgRequestLatency: 80 * time.Microsecond,
		MaxRequestLatency: 9 * time.Millisecond,
		Uptime:            time.Minute,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out NetSnapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the snapshot:\n in: %+v\nout: %+v", in, out)
	}

	assertJSONKeys(t, b, []string{
		"decides", "batches", "batch_decisions", "observes", "reads",
		"evictions", "exports", "imports", "rejected_overload",
		"rejected_deadline", "rejected_draining", "bad_requests",
		"avg_request_latency_ns", "max_request_latency_ns", "uptime_ns",
	})
}

// assertJSONKeys checks the marshaled object carries exactly the expected
// key set — a renamed or dropped field is a wire-contract break, not a
// refactor.
func assertJSONKeys(t *testing.T, b []byte, want []string) {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("marshaled snapshot lacks stable key %q", k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("marshaled snapshot has %d keys, want %d: %v", len(m), len(want), m)
	}
}

// TestNetCountersRecording: the recording methods move the snapshot the way
// the handler layer assumes.
func TestNetCountersRecording(t *testing.T) {
	c := NewNetCounters()
	c.RecordDecide(10 * time.Microsecond)
	c.RecordDecide(30 * time.Microsecond)
	c.RecordBatch(64, 2*time.Millisecond)
	c.RecordObserve()
	c.RecordRead()
	c.RecordEviction()
	c.RecordRejectOverload()
	c.RecordRejectDeadline()
	c.RecordRejectDraining()
	c.RecordBadRequest()

	s := c.Snapshot()
	if s.Decides != 2 || s.Batches != 1 || s.BatchDecisions != 64 || s.Observes != 1 {
		t.Errorf("traffic counters wrong: %+v", s)
	}
	if s.Reads != 1 || s.Evictions != 1 || s.RejectedOverload != 1 ||
		s.RejectedDeadline != 1 || s.RejectedDraining != 1 || s.BadRequests != 1 {
		t.Errorf("bookkeeping counters wrong: %+v", s)
	}
	if s.MaxRequestLatency != 2*time.Millisecond {
		t.Errorf("max latency = %s, want 2ms", s.MaxRequestLatency)
	}
	// Avg over the three latency-carrying requests: (10µs+30µs+2ms)/3.
	if want := (10*time.Microsecond + 30*time.Microsecond + 2*time.Millisecond) / 3; s.AvgRequestLatency != want {
		t.Errorf("avg latency = %s, want %s", s.AvgRequestLatency, want)
	}
	if s.Uptime <= 0 {
		t.Errorf("uptime = %s, want positive", s.Uptime)
	}
}
