package metrics

import "time"

// OverloadSnapshot is a point-in-time view of the adaptive admission gate
// (internal/overload): the live limits the controller is running, the
// queue-delay signal it is steering on, and the shed-by-class counters.
// It is served inside GET /v1/stats and rendered as alert_overload_*
// gauges/counters on GET /metrics, so the JSON field names are a stable
// wire contract; Duration fields marshal as integer nanoseconds.
type OverloadSnapshot struct {
	// Adaptive reports whether the measured-delay controller is allowed to
	// move the limits; SLOShed whether hopeless-deadline shedding is on.
	// Both false means the gate is running the static configuration, but
	// the controller still measures (observability is always on).
	Adaptive bool `json:"adaptive"`
	SLOShed  bool `json:"slo_shed"`
	// InflightLimit and QueueLimit are the effective limits right now;
	// Inflight and Queued the current occupancy against them.
	InflightLimit int `json:"inflight_limit"`
	QueueLimit    int `json:"queue_limit"`
	Inflight      int `json:"inflight"`
	Queued        int `json:"queued"`
	// QueueDelayEWMA and the percentiles describe the observed admission
	// queue delay — the signal the controller steers on.
	QueueDelayEWMA time.Duration `json:"queue_delay_ewma_ns"`
	QueueDelayP50  time.Duration `json:"queue_delay_p50_ns"`
	QueueDelayP95  time.Duration `json:"queue_delay_p95_ns"`
	QueueDelayP99  time.Duration `json:"queue_delay_p99_ns"`
	// ServiceEWMA is the engine's expected decide latency; HeadroomEWMA the
	// expected per-request deadline headroom. Serveability prediction is
	// QueueDelayP95 + ServiceEWMA vs. a request's deadline.
	ServiceEWMA  time.Duration `json:"service_ewma_ns"`
	HeadroomEWMA time.Duration `json:"headroom_ewma_ns"`
	// RetryAfterHint is the controller's current drain estimate — the
	// honest Retry-After a rejection carries right now.
	RetryAfterHint time.Duration `json:"retry_after_hint_ns"`
	// LimitIncreases and LimitDecreases count control-loop moves.
	LimitIncreases int64 `json:"limit_increases"`
	LimitDecreases int64 `json:"limit_decreases"`
	// Shed-by-class counters: Hopeless is the SLO shedder (deadline could
	// not have been met), Overload the full queue, Deadline expiry while
	// queued, Draining shutdown refusals.
	ShedHopeless int64 `json:"shed_hopeless"`
	ShedOverload int64 `json:"shed_overload"`
	ShedDeadline int64 `json:"shed_deadline"`
	ShedDraining int64 `json:"shed_draining"`
}

// StreamSLO is one stream's deadline-attainment record: how many decides
// it was served, how many of those met their deadline, and how many of its
// requests the gate shed. Served inside GET /v1/stats.
type StreamSLO struct {
	// Stream is the stream id; -1 is the overflow bucket that absorbs
	// streams past the tracker's cap.
	Stream int   `json:"stream"`
	Served int64 `json:"served"`
	Met    int64 `json:"met"`
	Shed   int64 `json:"shed"`
	// Attainment is Met / (Served + Shed): sheds count as misses, because
	// to the caller a shed request is a deadline miss.
	Attainment float64 `json:"attainment"`
}
