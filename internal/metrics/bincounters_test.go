package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestBinCountersAggregate folds a small workload through every Record
// method and checks the snapshot adds up.
func TestBinCountersAggregate(t *testing.T) {
	c := NewBinCounters()
	c.RecordConnOpen()
	c.RecordConnOpen()
	c.RecordConnClose()
	for i := 0; i < 5; i++ {
		c.RecordFrameIn()
		c.RecordFrameOut()
	}
	c.RecordDecide(10 * time.Millisecond)
	c.RecordDecide(30 * time.Millisecond)
	c.RecordObserve()
	c.RecordBatch(64)
	c.RecordCoalesce(2)
	c.RecordExport()
	c.RecordCheckpoint()
	c.RecordImport()
	c.RecordEviction()
	c.RecordRejectOverload()
	c.RecordRejectDeadline()
	c.RecordRejectDraining()
	c.RecordRejectRestoring()
	c.RecordBadFrame()

	s := c.Snapshot()
	if s.ConnsOpened != 2 || s.ConnsClosed != 1 {
		t.Errorf("conns = %d/%d", s.ConnsOpened, s.ConnsClosed)
	}
	if s.FramesIn != 5 || s.FramesOut != 5 {
		t.Errorf("frames = %d/%d", s.FramesIn, s.FramesOut)
	}
	if s.Decides != 2 || s.Observes != 1 || s.Batches != 1 || s.BatchDecisions != 64 {
		t.Errorf("ops = %+v", s)
	}
	if s.CoalesceFlushes != 1 || s.Coalesced != 2 {
		t.Errorf("coalesce = %d/%d", s.Coalesced, s.CoalesceFlushes)
	}
	if s.RejectedOverload != 1 || s.RejectedDeadline != 1 || s.RejectedDraining != 1 || s.RejectedRestoring != 1 || s.BadFrames != 1 {
		t.Errorf("rejections = %+v", s)
	}
	if s.AvgDecideLatency != 20*time.Millisecond {
		t.Errorf("avg latency = %v, want 20ms", s.AvgDecideLatency)
	}
	if s.MaxDecideLatency != 30*time.Millisecond {
		t.Errorf("max latency = %v, want 30ms", s.MaxDecideLatency)
	}
	if s.Uptime <= 0 {
		t.Errorf("uptime = %v", s.Uptime)
	}
	if str := s.String(); !strings.Contains(str, "decides=2") {
		t.Errorf("String() = %q", str)
	}
}

// TestBinSnapshotJSONRoundTrip pins the binary listener's counter snapshot
// wire contract (it rides inside GET /v1/stats) the same way the serve and
// net snapshots are pinned.
func TestBinSnapshotJSONRoundTrip(t *testing.T) {
	in := BinSnapshot{
		ConnsOpened:       10,
		ConnsClosed:       4,
		FramesIn:          5000,
		FramesOut:         4998,
		Decides:           2400,
		Observes:          2400,
		Batches:           3,
		BatchDecisions:    192,
		CoalesceFlushes:   120,
		Coalesced:         900,
		Exports:           2,
		Checkpoints:       7,
		Imports:           2,
		Evictions:         1,
		RejectedOverload:  13,
		RejectedDeadline:  1,
		RejectedDraining:  2,
		RejectedRestoring: 1,
		BadFrames:         1,
		AvgDecideLatency:  80 * time.Microsecond,
		MaxDecideLatency:  9 * time.Millisecond,
		Uptime:            time.Hour,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out BinSnapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the snapshot:\n in: %+v\nout: %+v", in, out)
	}

	assertJSONKeys(t, b, []string{
		"conns_opened", "conns_closed", "frames_in", "frames_out",
		"decides", "observes", "batches", "batch_decisions",
		"coalesce_flushes", "coalesced",
		"exports", "checkpoints", "imports", "evictions",
		"rejected_overload", "rejected_deadline", "rejected_draining",
		"rejected_restoring", "bad_frames",
		"avg_decide_latency_ns", "max_decide_latency_ns", "uptime_ns",
	})
}

// TestWritePrometheus checks the exposition output is well-formed enough
// for a scraper: every family has HELP and TYPE lines, the values land,
// and the binary families appear only when a binary snapshot is present.
func TestWritePrometheus(t *testing.T) {
	serve := ServeSnapshot{Decisions: 7, Streams: 3}
	net := NetSnapshot{Decides: 5, RejectedOverload: 2}
	bin := BinSnapshot{ConnsOpened: 4, ConnsClosed: 1, Decides: 9, Coalesced: 6}

	ov := OverloadSnapshot{Adaptive: true, InflightLimit: 8, QueueLimit: 16, ShedHopeless: 3}

	var sb strings.Builder
	WritePrometheus(&sb, serve, net, &bin, &ov)
	out := sb.String()
	for _, want := range []string{
		"# TYPE alert_serve_decisions_total counter\nalert_serve_decisions_total 7\n",
		"# TYPE alert_serve_streams gauge\nalert_serve_streams 3\n",
		"# TYPE alert_http_decides_total counter\nalert_http_decides_total 5\n",
		"alert_http_rejected_overload_total 2\n",
		"# TYPE alert_binwire_conns gauge\nalert_binwire_conns 3\n",
		"alert_binwire_decides_total 9\n",
		"alert_binwire_coalesced_total 6\n",
		"# TYPE alert_overload_adaptive gauge\nalert_overload_adaptive 1\n",
		"alert_overload_inflight_limit 8\n",
		"alert_overload_queue_limit 16\n",
		"alert_overload_shed_hopeless_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "# ") && !strings.HasPrefix(line, "alert_") {
			t.Errorf("stray exposition line %q", line)
		}
	}

	sb.Reset()
	WritePrometheus(&sb, serve, net, nil, nil)
	if strings.Contains(sb.String(), "alert_binwire_") {
		t.Error("binary families rendered without a binary listener")
	}
	if strings.Contains(sb.String(), "alert_overload_") {
		t.Error("overload families rendered without a gate snapshot")
	}
}
