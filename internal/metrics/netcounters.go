package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// NetCounters are the request/latency/overload counters of the network
// serving front end (internal/netserve). They sit above ServeCounters —
// which count what the stream table served — and count what the HTTP
// surface saw: requests per endpoint, admission-control rejections, and
// end-to-end request latency including queueing at the admission gate. All
// methods are safe for concurrent use.
type NetCounters struct {
	start time.Time

	decides        atomic.Int64
	batches        atomic.Int64
	batchDecisions atomic.Int64
	observes       atomic.Int64
	reads          atomic.Int64
	evictions      atomic.Int64
	exports        atomic.Int64
	imports        atomic.Int64

	rejectedOverload  atomic.Int64
	rejectedDeadline  atomic.Int64
	rejectedDraining  atomic.Int64
	rejectedRestoring atomic.Int64
	rejectedHopeless  atomic.Int64
	badRequests       atomic.Int64

	// reqNanos accumulates the handler time of decide and decide-batch
	// requests (admission wait + service + encoding); maxNanos tracks the
	// high-water mark via CAS.
	reqNanos atomic.Int64
	reqCount atomic.Int64
	maxNanos atomic.Int64
}

// NewNetCounters returns zeroed counters with the uptime clock started.
func NewNetCounters() *NetCounters {
	return &NetCounters{start: time.Now()}
}

// RecordDecide folds in one served single-decide request and its end-to-end
// handler latency.
func (c *NetCounters) RecordDecide(d time.Duration) {
	c.decides.Add(1)
	c.recordLatency(d)
}

// RecordBatch folds in one served decide-batch request: its size and its
// end-to-end handler latency.
func (c *NetCounters) RecordBatch(size int, d time.Duration) {
	c.batches.Add(1)
	c.batchDecisions.Add(int64(size))
	c.recordLatency(d)
}

func (c *NetCounters) recordLatency(d time.Duration) {
	c.reqNanos.Add(int64(d))
	c.reqCount.Add(1)
	for {
		cur := c.maxNanos.Load()
		if int64(d) <= cur || c.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// RecordObserve folds in one accepted observe request.
func (c *NetCounters) RecordObserve() { c.observes.Add(1) }

// RecordRead folds in one stats/streams read.
func (c *NetCounters) RecordRead() { c.reads.Add(1) }

// RecordEviction folds in one DELETE /v1/streams/{id}.
func (c *NetCounters) RecordEviction() { c.evictions.Add(1) }

// RecordExport folds in one served GET /v1/streams/{id}/snapshot (a
// session left this node).
func (c *NetCounters) RecordExport() { c.exports.Add(1) }

// RecordImport folds in one served PUT /v1/streams/{id} (a session arrived
// at this node).
func (c *NetCounters) RecordImport() { c.imports.Add(1) }

// RecordRejectOverload counts a 429: the admission queue was full.
func (c *NetCounters) RecordRejectOverload() { c.rejectedOverload.Add(1) }

// RecordRejectDeadline counts a request whose Spec deadline expired while
// it waited at the admission gate.
func (c *NetCounters) RecordRejectDeadline() { c.rejectedDeadline.Add(1) }

// RecordRejectDraining counts a request refused because the server is
// draining for shutdown.
func (c *NetCounters) RecordRejectDraining() { c.rejectedDraining.Add(1) }

// RecordRejectRestoring counts a request shed with 503 because its stream
// was mid-restore after a failover — the bounded, Retry-After-hinted shed
// window the self-healing path is allowed.
func (c *NetCounters) RecordRejectRestoring() { c.rejectedRestoring.Add(1) }

// RecordRejectHopeless counts a 429 from the SLO shedder: the gate was
// saturated and the request's deadline was predicted unmeetable, so it was
// shed before joining the queue.
func (c *NetCounters) RecordRejectHopeless() { c.rejectedHopeless.Add(1) }

// RecordBadRequest counts a 4xx other than admission rejections
// (unparseable body, unknown objective, bad path).
func (c *NetCounters) RecordBadRequest() { c.badRequests.Add(1) }

// NetSnapshot is a point-in-time view of the front-end counters. Like
// ServeSnapshot it is served over GET /v1/stats, so the JSON field names
// are a stable wire contract; Duration fields marshal as integer
// nanoseconds.
type NetSnapshot struct {
	// Decides counts POST /v1/decide requests served; Batches counts
	// POST /v1/decide-batch requests and BatchDecisions the decisions
	// inside them; Observes counts accepted observes.
	Decides        int64 `json:"decides"`
	Batches        int64 `json:"batches"`
	BatchDecisions int64 `json:"batch_decisions"`
	Observes       int64 `json:"observes"`
	// Reads counts stats/streams GETs; Evictions counts stream DELETEs.
	Reads     int64 `json:"reads"`
	Evictions int64 `json:"evictions"`
	// Exports counts served snapshot exports; Imports counts served
	// session imports (the HTTP ends of stream migration).
	Exports int64 `json:"exports"`
	Imports int64 `json:"imports"`
	// RejectedOverload counts 429s from a full admission queue;
	// RejectedDeadline requests whose Spec deadline expired while queued;
	// RejectedDraining requests refused during shutdown drain;
	// RejectedRestoring requests shed while their stream was restoring
	// after a failover; RejectedHopeless requests the SLO shedder refused
	// because their deadline was predicted unmeetable; BadRequests
	// malformed requests.
	RejectedOverload  int64 `json:"rejected_overload"`
	RejectedDeadline  int64 `json:"rejected_deadline"`
	RejectedDraining  int64 `json:"rejected_draining"`
	RejectedRestoring int64 `json:"rejected_restoring,omitempty"`
	RejectedHopeless  int64 `json:"rejected_hopeless,omitempty"`
	BadRequests       int64 `json:"bad_requests"`
	// AvgRequestLatency and MaxRequestLatency are end-to-end handler times
	// of decide and decide-batch requests, admission wait included.
	AvgRequestLatency time.Duration `json:"avg_request_latency_ns"`
	MaxRequestLatency time.Duration `json:"max_request_latency_ns"`
	// Uptime is the time since the counters were created.
	Uptime time.Duration `json:"uptime_ns"`
}

// Snapshot returns a consistent-enough view for reporting: each field is
// read atomically, though the set is not a single atomic cut.
func (c *NetCounters) Snapshot() NetSnapshot {
	s := NetSnapshot{
		Decides:           c.decides.Load(),
		Batches:           c.batches.Load(),
		BatchDecisions:    c.batchDecisions.Load(),
		Observes:          c.observes.Load(),
		Reads:             c.reads.Load(),
		Evictions:         c.evictions.Load(),
		Exports:           c.exports.Load(),
		Imports:           c.imports.Load(),
		RejectedOverload:  c.rejectedOverload.Load(),
		RejectedDeadline:  c.rejectedDeadline.Load(),
		RejectedDraining:  c.rejectedDraining.Load(),
		RejectedRestoring: c.rejectedRestoring.Load(),
		RejectedHopeless:  c.rejectedHopeless.Load(),
		BadRequests:       c.badRequests.Load(),
		MaxRequestLatency: time.Duration(c.maxNanos.Load()),
		Uptime:            time.Since(c.start),
	}
	if n := c.reqCount.Load(); n > 0 {
		s.AvgRequestLatency = time.Duration(c.reqNanos.Load() / n)
	}
	return s
}

// String renders the snapshot for logs and CLI output.
func (s NetSnapshot) String() string {
	return fmt.Sprintf("decides=%d batches=%d batch_decisions=%d observes=%d rejected_overload=%d rejected_deadline=%d rejected_draining=%d avg_latency=%s max_latency=%s",
		s.Decides, s.Batches, s.BatchDecisions, s.Observes,
		s.RejectedOverload, s.RejectedDeadline, s.RejectedDraining,
		s.AvgRequestLatency, s.MaxRequestLatency)
}
