package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ServeCounters are the throughput/latency counters of the concurrent
// serving layer (internal/serve). All methods are safe for concurrent use;
// the recording path is a handful of atomic adds so it stays off the
// serving hot path's critical section.
type ServeCounters struct {
	start time.Time

	decisions atomic.Int64
	observes  atomic.Int64
	batches   atomic.Int64

	// decideNanos accumulates end-to-end Decide service time (submit to
	// reply), the serving-latency signal; maxNanos tracks its high-water
	// mark via CAS.
	decideNanos atomic.Int64
	maxNanos    atomic.Int64
}

// NewServeCounters returns zeroed counters with the uptime clock started.
func NewServeCounters() *ServeCounters {
	return &ServeCounters{start: time.Now()}
}

// RecordDecide folds in one served decision and its end-to-end latency.
func (c *ServeCounters) RecordDecide(d time.Duration) {
	c.decisions.Add(1)
	c.decideNanos.Add(int64(d))
	for {
		cur := c.maxNanos.Load()
		if int64(d) <= cur || c.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// RecordObserve folds in one applied observation.
func (c *ServeCounters) RecordObserve() { c.observes.Add(1) }

// RecordBatch folds in one dispatched batch.
func (c *ServeCounters) RecordBatch() { c.batches.Add(1) }

// ServeSnapshot is a point-in-time view of the serving counters.
type ServeSnapshot struct {
	// Decisions and Observes count completed requests; Batches counts
	// DecideBatch dispatches.
	Decisions, Observes, Batches int64
	// AvgDecideLatency and MaxDecideLatency are end-to-end (submit to
	// reply) per-decision times.
	AvgDecideLatency, MaxDecideLatency time.Duration
	// Uptime is the time since the counters were created.
	Uptime time.Duration
	// DecidesPerSec is Decisions / Uptime.
	DecidesPerSec float64
}

// Snapshot returns a consistent-enough view for reporting: each field is
// read atomically, though the set is not a single atomic cut.
func (c *ServeCounters) Snapshot() ServeSnapshot {
	s := ServeSnapshot{
		Decisions: c.decisions.Load(),
		Observes:  c.observes.Load(),
		Batches:   c.batches.Load(),
		Uptime:    time.Since(c.start),
	}
	s.MaxDecideLatency = time.Duration(c.maxNanos.Load())
	if s.Decisions > 0 {
		s.AvgDecideLatency = time.Duration(c.decideNanos.Load() / s.Decisions)
	}
	if sec := s.Uptime.Seconds(); sec > 0 {
		s.DecidesPerSec = float64(s.Decisions) / sec
	}
	return s
}

// String renders the snapshot for logs and CLI output.
func (s ServeSnapshot) String() string {
	return fmt.Sprintf("decisions=%d observes=%d batches=%d avg_latency=%s max_latency=%s rate=%.0f/s",
		s.Decisions, s.Observes, s.Batches, s.AvgDecideLatency, s.MaxDecideLatency, s.DecidesPerSec)
}
