package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ServeCounters are the throughput/latency counters of the concurrent
// serving layer (internal/serve). All methods are safe for concurrent use;
// the recording path is a handful of atomic adds so it stays off the
// serving hot path's critical section.
type ServeCounters struct {
	start time.Time

	decisions atomic.Int64
	observes  atomic.Int64
	batches   atomic.Int64

	// streams and sessionBytes gauge the pool's live stream table: how many
	// per-stream sessions exist right now and their aggregate in-memory
	// footprint. Sessions are created on a stream's first request and
	// removed on eviction, so the pair is the capacity signal a
	// million-stream deployment watches.
	streams      atomic.Int64
	sessionBytes atomic.Int64

	// exports and imports count migrations: sessions snapshotted out of this
	// pool's stream table (ExportStream) and sessions restored into it
	// (ImportStream). exports − imports is a node's net outflow during a
	// rebalance or drain-down.
	exports atomic.Int64
	imports atomic.Int64

	// decideNanos accumulates end-to-end Decide service time (submit to
	// reply), the serving-latency signal; maxNanos tracks its high-water
	// mark via CAS.
	decideNanos atomic.Int64
	maxNanos    atomic.Int64

	// queueNanos accumulates in-pool queue delay — submit to worker pickup,
	// the pool's contribution to the admission controller's delay signal;
	// queueMax tracks its high-water mark via CAS.
	queueNanos atomic.Int64
	queueCount atomic.Int64
	queueMax   atomic.Int64
}

// NewServeCounters returns zeroed counters with the uptime clock started.
func NewServeCounters() *ServeCounters {
	return &ServeCounters{start: time.Now()}
}

// RecordDecide folds in one served decision and its end-to-end latency.
func (c *ServeCounters) RecordDecide(d time.Duration) {
	c.decisions.Add(1)
	c.decideNanos.Add(int64(d))
	for {
		cur := c.maxNanos.Load()
		if int64(d) <= cur || c.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// RecordQueueWait folds in one task's in-pool queue delay: the time
// between submission to a shard and a worker picking it up.
func (c *ServeCounters) RecordQueueWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.queueNanos.Add(int64(d))
	c.queueCount.Add(1)
	for {
		cur := c.queueMax.Load()
		if int64(d) <= cur || c.queueMax.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// RecordObserve folds in one applied observation.
func (c *ServeCounters) RecordObserve() { c.observes.Add(1) }

// RecordSessionCreate moves the stream-table gauges for one session created
// on first use.
func (c *ServeCounters) RecordSessionCreate(bytes int64) {
	c.streams.Add(1)
	c.sessionBytes.Add(bytes)
}

// RecordSessionEvict moves the stream-table gauges for one evicted session.
func (c *ServeCounters) RecordSessionEvict(bytes int64) {
	c.streams.Add(-1)
	c.sessionBytes.Add(-bytes)
}

// RecordStreamExport folds in one session snapshotted out of the table
// (the export path already moves the table gauges via RecordSessionEvict).
func (c *ServeCounters) RecordStreamExport() { c.exports.Add(1) }

// RecordStreamImport folds in one session restored into the table (the
// import path already moves the table gauges via RecordSessionCreate).
func (c *ServeCounters) RecordStreamImport() { c.imports.Add(1) }

// RecordBatch folds in one dispatched batch.
func (c *ServeCounters) RecordBatch() { c.batches.Add(1) }

// ServeSnapshot is a point-in-time view of the serving counters. It is the
// payload of GET /v1/stats on the network front end, so the JSON field
// names below are a stable wire contract: additive changes only. Duration
// fields marshal as integer nanoseconds (encoding/json's time.Duration
// encoding), which the _ns suffixes make explicit.
type ServeSnapshot struct {
	// Decisions and Observes count completed requests; Batches counts
	// DecideBatch dispatches.
	Decisions int64 `json:"decisions"`
	Observes  int64 `json:"observes"`
	Batches   int64 `json:"batches"`
	// Streams gauges the live per-stream sessions in the pool's stream
	// table; SessionBytes their aggregate in-memory footprint.
	Streams      int64 `json:"streams"`
	SessionBytes int64 `json:"session_bytes"`
	// StreamExports and StreamImports count sessions migrated out of and
	// into the stream table.
	StreamExports int64 `json:"stream_exports"`
	StreamImports int64 `json:"stream_imports"`
	// AvgDecideLatency and MaxDecideLatency are end-to-end (submit to
	// reply) per-decision times.
	AvgDecideLatency time.Duration `json:"avg_decide_latency_ns"`
	MaxDecideLatency time.Duration `json:"max_decide_latency_ns"`
	// AvgQueueDelay and MaxQueueDelay are in-pool queue delays (submit to
	// worker pickup) — the pool's share of the decide latency above.
	AvgQueueDelay time.Duration `json:"avg_queue_delay_ns,omitempty"`
	MaxQueueDelay time.Duration `json:"max_queue_delay_ns,omitempty"`
	// Uptime is the time since the counters were created.
	Uptime time.Duration `json:"uptime_ns"`
	// DecidesPerSec is Decisions / Uptime.
	DecidesPerSec float64 `json:"decides_per_sec"`
}

// Snapshot returns a consistent-enough view for reporting: each field is
// read atomically, though the set is not a single atomic cut.
func (c *ServeCounters) Snapshot() ServeSnapshot {
	s := ServeSnapshot{
		Decisions:     c.decisions.Load(),
		Observes:      c.observes.Load(),
		Batches:       c.batches.Load(),
		Streams:       c.streams.Load(),
		SessionBytes:  c.sessionBytes.Load(),
		StreamExports: c.exports.Load(),
		StreamImports: c.imports.Load(),
		Uptime:        time.Since(c.start),
	}
	s.MaxDecideLatency = time.Duration(c.maxNanos.Load())
	if s.Decisions > 0 {
		s.AvgDecideLatency = time.Duration(c.decideNanos.Load() / s.Decisions)
	}
	s.MaxQueueDelay = time.Duration(c.queueMax.Load())
	if n := c.queueCount.Load(); n > 0 {
		s.AvgQueueDelay = time.Duration(c.queueNanos.Load() / n)
	}
	if sec := s.Uptime.Seconds(); sec > 0 {
		s.DecidesPerSec = float64(s.Decisions) / sec
	}
	return s
}

// String renders the snapshot for logs and CLI output.
func (s ServeSnapshot) String() string {
	return fmt.Sprintf("decisions=%d observes=%d batches=%d streams=%d session_bytes=%d exports=%d imports=%d avg_latency=%s max_latency=%s rate=%.0f/s",
		s.Decisions, s.Observes, s.Batches, s.Streams, s.SessionBytes, s.StreamExports, s.StreamImports, s.AvgDecideLatency, s.MaxDecideLatency, s.DecidesPerSec)
}
