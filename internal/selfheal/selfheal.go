// Package selfheal makes a node crash a cluster-internal event: detection
// comes from internal/membership, recovery from replicated checkpoints,
// and no operator or load generator is in the loop.
//
// Each node runs one Manager, which does three jobs:
//
//  1. Replicate. On a cadence (ReplicateEvery, or explicit ReplicateOnce
//     calls), snapshot every locally served stream — the checkpoint tap,
//     which does NOT remove the session — and PUT the canonical binary
//     blob to the stream's ring successor: the member that would own the
//     stream if this node vanished. Because internal/hashring is shared
//     with the client router, "where the replica sits" and "where clients
//     will route after the death" are the same node by construction.
//
//  2. Fail over. When the membership agent declares a member dead, every
//     surviving Manager scans its held replicas for streams owned by the
//     dead node, keeps the ones whose post-failure hash-home is itself,
//     and restores them — unless the stream is already live somewhere
//     (e.g. it was migrated off the dead node before the crash). During
//     the restore the stream is held: the front end sheds its requests
//     with 503 + Retry-After, so the failover window is visible and
//     bounded but loses nothing that was accepted.
//
//  3. Arbitrate. Every import announces an ownership claim
//     (POST /v1/claims) carrying the session's decision count and how it
//     was acquired. Claims are totally ordered — more decisions win;
//     at a tie a migration import outranks a failover restore (a replica
//     is never fresher than an export of the same session); equal kinds
//     fall back to node id — so however a migration races a failover,
//     exactly one copy of the stream survives and every other holder
//     evicts. This is what keeps the chaos checker's single-ownership
//     invariant true without any lock spanning the cluster.
package selfheal

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/hashring"
	"github.com/alert-project/alert/internal/membership"
	"github.com/alert-project/alert/internal/netserve"
)

// Config wires a Manager to its node.
type Config struct {
	// NodeID is this node's cluster identity (must match the membership
	// agent's ID). Required.
	NodeID string
	// Addr is this node's advertised address — the string the hash ring
	// hashes. Required.
	Addr string
	// Agent is the node's membership agent; the Manager subscribes to its
	// view changes for failover triggers and reads its member set for
	// ring builds. Required.
	Agent *membership.Agent
	// Server is the local stream table. Required.
	Server *alert.Server
	// ReplicateEvery is the checkpoint replication cadence for Run. 0
	// disables the internal ticker — replication then happens only via
	// explicit ReplicateOnce calls (the chaos harness clocks it that way
	// to keep drills deterministic).
	ReplicateEvery time.Duration
	// HTTPClient performs replica, claim, and probe requests. Nil means a
	// private client with a 2s timeout.
	HTTPClient *http.Client
	// Logf, if set, receives one line per replication pass summary,
	// restore, and claim resolution.
	Logf func(format string, args ...any)
}

// replica is one held checkpoint of a peer-owned stream.
type replica struct {
	owner     string
	decisions int64
	snap      alert.SessionSnapshot
}

// Manager implements netserve.Recovery for one node. All methods are safe
// for concurrent use.
type Manager struct {
	cfg  Config
	http *http.Client

	mu        sync.Mutex
	replicas  map[int]replica // stream -> freshest replicated checkpoint
	restoring map[int]bool    // streams mid-restore (front end sheds these)
	acquired  map[int]string  // stream -> claim kind of the last local import/restore
	lastView  membership.View // previous view, for dead-transition detection
	failovers int64
	restored  int64
}

var _ netserve.Recovery = (*Manager)(nil)

// New builds a Manager. It is passive until Run is started and/or it is
// installed as the front end's Recovery.
func New(cfg Config) (*Manager, error) {
	if cfg.NodeID == "" || cfg.Addr == "" {
		return nil, fmt.Errorf("selfheal: NodeID and Addr required")
	}
	if cfg.Agent == nil || cfg.Server == nil {
		return nil, fmt.Errorf("selfheal: Agent and Server required")
	}
	cl := cfg.HTTPClient
	if cl == nil {
		cl = &http.Client{Timeout: 2 * time.Second}
	}
	m := &Manager{
		cfg:       cfg,
		http:      cl,
		replicas:  make(map[int]replica),
		restoring: make(map[int]bool),
		acquired:  make(map[int]string),
	}
	m.lastView = cfg.Agent.View()
	return m, nil
}

// OnViewChange is the membership subscription hook: wire it to the
// agent's OnChange. It diffs against the previously seen view and spawns
// a failover pass for every member newly declared dead. The pass runs in
// its own goroutine — the agent calls OnChange from its heartbeat loop,
// which must not block on cluster-wide restore traffic.
func (m *Manager) OnViewChange(v membership.View) {
	m.mu.Lock()
	prev := m.lastView
	m.lastView = v.Clone()
	m.mu.Unlock()
	for _, e := range v.Entries {
		if e.State != membership.StateDead {
			continue
		}
		if pe, ok := prev.Entry(e.ID); ok && pe.State == membership.StateDead {
			continue // already knew
		}
		dead := e
		m.logf("selfheal %s: %s (%s) declared dead, starting failover", m.cfg.NodeID, dead.ID, dead.Addr)
		go m.failover(context.Background(), dead)
	}
}

// Run replicates on the configured cadence until ctx is cancelled. With
// ReplicateEvery zero it just blocks until cancel (failovers are driven
// entirely by OnViewChange; replication by explicit ReplicateOnce).
func (m *Manager) Run(ctx context.Context) {
	if m.cfg.ReplicateEvery <= 0 {
		<-ctx.Done()
		return
	}
	ticker := time.NewTicker(m.cfg.ReplicateEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.ReplicateOnce(ctx)
		}
	}
}

// ReplicateOnce checkpoints every locally served stream and ships each
// checkpoint to its ring successor (the post-failure hash-home of the
// stream with this node removed). Returns how many replicas were shipped.
// Safe to call concurrently with serving: the checkpoint tap snapshots
// without removing.
func (m *Manager) ReplicateOnce(ctx context.Context) int {
	members := m.cfg.Agent.Members()
	shipped := 0
	for _, stream := range m.cfg.Server.StreamIDs() {
		target := hashring.Successor(members, m.cfg.Addr, stream)
		if target == "" || target == m.cfg.Addr {
			continue // nowhere to replicate (single-member cluster)
		}
		snap, ok := m.cfg.Server.SnapshotStream(stream)
		if !ok {
			continue // evicted or exported since StreamIDs
		}
		if err := m.putReplica(ctx, target, stream, snap); err != nil {
			m.logf("selfheal %s: replicate stream %d -> %s: %v", m.cfg.NodeID, stream, target, err)
			continue
		}
		shipped++
	}
	if shipped > 0 {
		m.logf("selfheal %s: replicated %d stream checkpoint(s)", m.cfg.NodeID, shipped)
	}
	return shipped
}

// putReplica ships one checkpoint.
func (m *Manager) putReplica(ctx context.Context, target string, stream int, snap alert.SessionSnapshot) error {
	blob, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	req := netserve.ReplicaPutRequest{
		Owner:       m.cfg.NodeID,
		SnapshotB64: base64.StdEncoding.EncodeToString(blob),
	}
	var resp netserve.ReplicaPutResponse
	return m.doJSON(ctx, http.MethodPut, target, fmt.Sprintf("/v1/replicas/%d", stream), req, &resp)
}

// failover restores the dead member's orphaned streams from the replicas
// this node holds. Only streams whose post-failure hash-home is this node
// are restored (other survivors hold the replicas for theirs), and only
// if no live session for the stream exists anywhere — a stream migrated
// off the dead node before the crash is not an orphan.
func (m *Manager) failover(ctx context.Context, dead membership.Entry) {
	m.mu.Lock()
	m.failovers++
	orphans := make(map[int]replica)
	for stream, r := range m.replicas {
		if r.owner == dead.ID {
			orphans[stream] = r
		}
	}
	m.mu.Unlock()
	if len(orphans) == 0 {
		return
	}

	members := m.cfg.Agent.Members()
	ring := hashring.Build(members)
	// One probe pass over the survivors' stream tables, shared by every
	// orphan this node is responsible for.
	live := m.liveStreams(ctx, members)

	for stream, r := range orphans {
		if ring.Owner(stream) != m.cfg.Addr {
			continue // another survivor's responsibility
		}
		m.restoreOrphan(ctx, stream, r, live, members)
		// Either way the replica's owner is gone; drop our copy so a
		// later death of the restored home replicates fresh state, not
		// this stale blob.
		m.mu.Lock()
		delete(m.replicas, stream)
		m.mu.Unlock()
	}
}

// restoreOrphan restores one stream from a replica, holding its traffic
// while the import is in flight, then claims ownership.
func (m *Manager) restoreOrphan(ctx context.Context, stream int, r replica, live map[int]string, members []string) {
	if at, isLive := live[stream]; isLive {
		m.logf("selfheal %s: stream %d already live at %s, skipping restore", m.cfg.NodeID, stream, at)
		return
	}
	m.mu.Lock()
	m.restoring[stream] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.restoring, stream)
		m.mu.Unlock()
	}()

	if err := m.cfg.Server.ImportStream(stream, r.snap); err != nil {
		// A live local session: routed traffic beat us here (the fresh
		// session formed after the ring moved). Nothing to restore over.
		m.logf("selfheal %s: stream %d restore refused (%v), keeping live session", m.cfg.NodeID, stream, err)
		return
	}
	m.mu.Lock()
	m.acquired[stream] = netserve.ClaimKindRestore
	m.restored++
	m.mu.Unlock()

	if sup := m.announce(ctx, stream, r.decisions, netserve.ClaimKindRestore, members); sup {
		// Someone holds a fresher session (a migration completed after
		// the checkpoint we restored from). Our copy is stale: evict it.
		m.cfg.Server.EvictStream(stream)
		m.mu.Lock()
		delete(m.acquired, stream)
		m.mu.Unlock()
		m.logf("selfheal %s: stream %d restore superseded by a fresher session, evicted", m.cfg.NodeID, stream)
		return
	}
	m.logf("selfheal %s: restored stream %d from %s's checkpoint (%d decisions)",
		m.cfg.NodeID, stream, r.owner, r.decisions)
}

// liveStreams probes every other member's stream table and returns
// stream -> address for every live session visible in the cluster.
// Unreachable members are skipped: the dead node itself will not answer,
// and a probe failure just means we lean on claims to arbitrate.
func (m *Manager) liveStreams(ctx context.Context, members []string) map[int]string {
	out := make(map[int]string)
	for _, addr := range members {
		if addr == m.cfg.Addr {
			for _, id := range m.cfg.Server.StreamIDs() {
				out[id] = addr
			}
			continue
		}
		var resp netserve.StreamsResponse
		if err := m.doJSON(ctx, http.MethodGet, addr, "/v1/streams", nil, &resp); err != nil {
			continue
		}
		for _, id := range resp.IDs {
			out[id] = addr
		}
	}
	return out
}

// announce broadcasts an ownership claim to every other member and
// reports whether any peer superseded it.
func (m *Manager) announce(ctx context.Context, stream int, decisions int64, kind string, members []string) bool {
	req := netserve.ClaimRequest{
		Stream:    stream,
		NodeID:    m.cfg.NodeID,
		Decisions: decisions,
		Kind:      kind,
	}
	superseded := false
	for _, addr := range members {
		if addr == m.cfg.Addr {
			continue
		}
		var resp netserve.ClaimResponse
		if err := m.doJSON(ctx, http.MethodPost, addr, "/v1/claims", req, &resp); err != nil {
			continue // unreachable peers cannot hold the stream for long; leases will expire them
		}
		if resp.Superseded {
			m.logf("selfheal %s: claim for stream %d superseded by %s (local %d vs theirs %d)",
				m.cfg.NodeID, stream, addr, decisions, resp.Decisions)
			superseded = true
		}
	}
	return superseded
}

// --- netserve.Recovery implementation ---

// Restoring reports whether a stream is mid-restore (see Config docs).
func (m *Manager) Restoring(stream int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.restoring[stream]
}

// StoreReplica keeps the freshest checkpoint per stream. A staler blob
// (fewer decisions) never overwrites a fresher one — replication is
// idempotent and unordered on the wire.
func (m *Manager) StoreReplica(stream int, owner string, decisions int64, snap alert.SessionSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.replicas[stream]; ok && cur.owner == owner && cur.decisions > decisions {
		return
	}
	m.replicas[stream] = replica{owner: owner, decisions: decisions, snap: snap}
}

// Replicas lists held replicas, sorted by stream id.
func (m *Manager) Replicas() []netserve.ReplicaInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]netserve.ReplicaInfo, 0, len(m.replicas))
	for stream, r := range m.replicas {
		out = append(out, netserve.ReplicaInfo{Stream: stream, Owner: r.owner, Decisions: r.decisions})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// HandleClaim arbitrates a peer's ownership claim against any local
// session for the stream, under the total order documented on the claim
// kinds: decisions, then import-over-restore, then node id. Exactly one
// side of any conflict keeps its copy.
func (m *Manager) HandleClaim(stream int, claimant, kind string, decisions int64) (bool, int64) {
	snap, ok := m.cfg.Server.SnapshotStream(stream)
	if !ok {
		return false, -1
	}
	local := snap.Decisions
	m.mu.Lock()
	localKind, hasKind := m.acquired[stream]
	m.mu.Unlock()
	if !hasKind {
		// A session formed by routed traffic (or predating self-healing)
		// ranks as an import: it is the client-driven path, and a restore
		// guess must not beat it on a tie.
		localKind = netserve.ClaimKindImport
	}
	if holderWins(local, localKind, m.cfg.NodeID, decisions, kind, claimant) {
		m.logf("selfheal %s: kept stream %d over %s's %s claim (%d vs %d decisions)",
			m.cfg.NodeID, stream, claimant, kind, local, decisions)
		return true, local
	}
	m.cfg.Server.EvictStream(stream)
	m.mu.Lock()
	delete(m.acquired, stream)
	m.mu.Unlock()
	m.logf("selfheal %s: evicted stream %d for %s's %s claim (%d vs %d decisions)",
		m.cfg.NodeID, stream, claimant, kind, local, decisions)
	return false, local
}

// AnnounceImport broadcasts a claim for a session imported over the wire.
func (m *Manager) AnnounceImport(stream int, decisions int64) bool {
	m.mu.Lock()
	m.acquired[stream] = netserve.ClaimKindImport
	m.mu.Unlock()
	sup := m.announce(context.Background(), stream, decisions, netserve.ClaimKindImport, m.cfg.Agent.Members())
	if sup {
		m.cfg.Server.EvictStream(stream)
		m.mu.Lock()
		delete(m.acquired, stream)
		m.mu.Unlock()
	}
	return sup
}

// holderWins decides a claim conflict from the holder's side. The order
// is total — antisymmetric by construction — so the two sides of any
// concurrent pair of claims agree on the single winner:
//
//	more decisions > fewer decisions
//	import > restore            (at equal decisions)
//	higher node id > lower      (at equal decisions and kind)
func holderWins(localDec int64, localKind, localID string, claimDec int64, claimKind, claimID string) bool {
	if localDec != claimDec {
		return localDec > claimDec
	}
	if localKind != claimKind {
		return localKind == netserve.ClaimKindImport
	}
	return localID > claimID
}

// Stats returns failover counters for logs and tests.
func (m *Manager) Stats() (failovers, restored int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers, m.restored
}

// doJSON performs one control-plane request against a member address.
func (m *Manager) doJSON(ctx context.Context, method, addr, path string, body, into any) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + path
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := m.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfheal: %s %s: status %d: %s", method, url, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if into != nil {
		return json.Unmarshal(data, into)
	}
	return nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}
