package selfheal

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/hashring"
	"github.com/alert-project/alert/internal/membership"
	"github.com/alert-project/alert/internal/netserve"
)

// healNode is one full test node: stream table, membership agent, and
// Manager behind a real netserve front end on loopback.
type healNode struct {
	id    string
	url   string
	srv   *alert.Server
	agent *membership.Agent
	mgr   *Manager
}

// startHealNode stands one up. The handler is installed through an
// indirection because the Manager needs the listener's URL as its ring
// address before the netserve handler can be built.
func startHealNode(t *testing.T, id string) *healNode {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	var handler http.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	var mgr *Manager
	agent, err := membership.New(membership.Config{
		ID:   id,
		Addr: ts.URL,
		OnChange: func(v membership.View) {
			if mgr != nil {
				mgr.OnViewChange(v)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err = New(Config{NodeID: id, Addr: ts.URL, Agent: agent, Server: srv, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	handler = netserve.New(srv, netserve.Config{NodeID: id, Membership: agent, Recovery: mgr})
	return &healNode{id: id, url: ts.URL, srv: srv, agent: agent, mgr: mgr}
}

// connect merges a full alive view of all nodes into every agent, the
// state a converged heartbeat exchange would reach.
func connect(t *testing.T, nodes []*healNode) {
	t.Helper()
	entries := make([]membership.Entry, 0, len(nodes))
	for _, n := range nodes {
		entries = append(entries, membership.Entry{
			ID: n.id, Addr: n.url, Incarnation: 1, State: membership.StateAlive,
		})
	}
	v := membership.View{Version: 1, Entries: entries}
	for _, n := range nodes {
		n.agent.Merge(v)
	}
}

// declareDead merges a dead tombstone for victim into every survivor,
// which is what the gossip path delivers after the lease expires. The
// merge fires each agent's OnChange, i.e. the Managers' failover.
func declareDead(nodes []*healNode, victim *healNode) {
	tomb := membership.View{Version: 2, Entries: []membership.Entry{{
		ID: victim.id, Addr: victim.url, Incarnation: 1, State: membership.StateDead,
	}}}
	for _, n := range nodes {
		if n != victim {
			n.agent.Merge(tomb)
		}
	}
}

// driveStream runs a few decide/observe rounds for a stream on a node so
// its session has real filter state and a nonzero decision count.
func driveStream(n *healNode, stream, rounds int) {
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.5, AccuracyGoal: 0.9}
	for i := 0; i < rounds; i++ {
		d, _ := n.srv.Decide(stream, spec)
		n.srv.Observe(stream, alert.Feedback{Decision: d, Latency: 0.1, CompletedStage: 0})
	}
}

func holds(n *healNode, stream int) bool {
	for _, id := range n.srv.StreamIDs() {
		if id == stream {
			return true
		}
	}
	return false
}

// waitFor polls until cond or the deadline; failover runs on its own
// goroutine, so tests observe it asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicateThenFailover is the tentpole's core loop in miniature:
// three nodes, streams served on one of them, checkpoints replicated to
// ring successors, the serving node dies, and the successors restore every
// orphan with its decision count intact — no orchestrator in sight.
func TestReplicateThenFailover(t *testing.T) {
	nodes := []*healNode{startHealNode(t, "n1"), startHealNode(t, "n2"), startHealNode(t, "n3")}
	connect(t, nodes)
	victim := nodes[0]

	streams := []int{1, 2, 3, 4, 5, 6}
	for _, s := range streams {
		driveStream(victim, s, 3)
	}
	want := make(map[int]int64)
	for _, s := range streams {
		snap, ok := victim.srv.SnapshotStream(s)
		if !ok {
			t.Fatalf("stream %d not held by victim", s)
		}
		want[s] = snap.Decisions
	}

	if shipped := victim.mgr.ReplicateOnce(context.Background()); shipped != len(streams) {
		t.Fatalf("replicated %d streams, want %d", shipped, len(streams))
	}
	// Every replica must sit on the stream's ring successor, where the
	// post-failure hash ring will route.
	members := victim.agent.Members()
	for _, s := range streams {
		succ := hashring.Successor(members, victim.url, s)
		var holder *healNode
		for _, n := range nodes[1:] {
			for _, r := range n.mgr.Replicas() {
				if r.Stream == s {
					holder = n
				}
			}
		}
		if holder == nil || holder.url != succ {
			t.Fatalf("stream %d replica not on ring successor %s", s, succ)
		}
	}

	declareDead(nodes, victim)

	ring := hashring.Build([]string{nodes[1].url, nodes[2].url})
	for _, s := range streams {
		s := s
		home := ring.Owner(s)
		var owner *healNode
		for _, n := range nodes[1:] {
			if n.url == home {
				owner = n
			}
		}
		waitFor(t, fmt.Sprintf("stream %d restored on %s", s, owner.id), func() bool {
			return holds(owner, s)
		})
		snap, ok := owner.srv.SnapshotStream(s)
		if !ok || snap.Decisions != want[s] {
			t.Fatalf("stream %d restored with %d decisions, want %d", s, snap.Decisions, want[s])
		}
		// Single ownership: nobody else holds it.
		for _, n := range nodes[1:] {
			if n != owner && holds(n, s) {
				t.Fatalf("stream %d held by both %s and %s", s, owner.id, n.id)
			}
		}
	}
}

// TestFailoverSkipsMigratedStream: a stream that was migrated off the
// dying node before the crash is not an orphan — the stale replica must
// not be restored over the live, fresher session.
func TestFailoverSkipsMigratedStream(t *testing.T) {
	nodes := []*healNode{startHealNode(t, "n1"), startHealNode(t, "n2"), startHealNode(t, "n3")}
	connect(t, nodes)
	victim := nodes[0]

	const stream = 7
	driveStream(victim, stream, 2)
	if victim.mgr.ReplicateOnce(context.Background()) != 1 {
		t.Fatal("replica not shipped")
	}

	// Migrate: export removes the session from the victim, import lands it
	// somewhere else, and the session keeps evolving past the checkpoint.
	snap, ok := victim.srv.ExportStream(stream)
	if !ok {
		t.Fatal("export failed")
	}
	dest := nodes[2]
	if err := dest.srv.ImportStream(stream, snap); err != nil {
		t.Fatal(err)
	}
	driveStream(dest, stream, 3)
	fresh, _ := dest.srv.SnapshotStream(stream)

	declareDead(nodes, victim)

	// Give any (wrong) restore a chance to happen, then check: the stream
	// lives only at its migration destination, at full freshness.
	time.Sleep(300 * time.Millisecond)
	for _, n := range nodes[1:] {
		if n != dest && holds(n, stream) {
			t.Fatalf("stale replica restored on %s despite live session on %s", n.id, dest.id)
		}
	}
	got, ok := dest.srv.SnapshotStream(stream)
	if !ok || got.Decisions != fresh.Decisions {
		t.Fatalf("live session damaged: %d decisions, want %d", got.Decisions, fresh.Decisions)
	}
}

// TestHandleClaimArbitration pins the claim total order from the holder's
// side: decisions first, import over restore at a tie, then node id.
func TestHandleClaimArbitration(t *testing.T) {
	nodes := []*healNode{startHealNode(t, "n1"), startHealNode(t, "n2")}
	connect(t, nodes)
	n := nodes[0]

	if sup, local := n.mgr.HandleClaim(1, "nX", netserve.ClaimKindRestore, 5); sup || local != -1 {
		t.Fatalf("claim on unheld stream: got (%v,%d), want (false,-1)", sup, local)
	}

	const stream = 9
	driveStream(n, stream, 4)
	snap, _ := n.srv.SnapshotStream(stream)
	local := snap.Decisions

	// Staler claim: holder keeps, claimant told superseded.
	if sup, got := n.mgr.HandleClaim(stream, "nX", netserve.ClaimKindRestore, local-1); !sup || got != local {
		t.Fatalf("staler claim: got (%v,%d), want (true,%d)", sup, got, local)
	}
	if !holds(n, stream) {
		t.Fatal("holder evicted against a staler claim")
	}
	// Tie: the local session ranks as an import (client-driven), so a
	// restore claim at equal decisions loses too.
	if sup, _ := n.mgr.HandleClaim(stream, "nX", netserve.ClaimKindRestore, local); !sup {
		t.Fatal("restore claim won a tie against a live import-ranked session")
	}
	// Fresher claim: holder evicts.
	if sup, got := n.mgr.HandleClaim(stream, "nX", netserve.ClaimKindImport, local+10); sup || got != local {
		t.Fatalf("fresher claim: got (%v,%d), want (false,%d)", sup, got, local)
	}
	if holds(n, stream) {
		t.Fatal("holder kept a session outranked by a fresher claim")
	}
}

// TestHolderWinsTotalOrder: the conflict rule must be antisymmetric —
// whichever side evaluates it, exactly one of two concurrent claimants
// survives. Enumerate both sides of every distinct pair.
func TestHolderWinsTotalOrder(t *testing.T) {
	type claim struct {
		dec  int64
		kind string
		id   string
	}
	var claims []claim
	for _, dec := range []int64{3, 7} {
		for _, kind := range []string{netserve.ClaimKindImport, netserve.ClaimKindRestore} {
			for _, id := range []string{"a", "b"} {
				claims = append(claims, claim{dec, kind, id})
			}
		}
	}
	for _, x := range claims {
		for _, y := range claims {
			if x.id == y.id {
				continue // node ids are unique cluster-wide
			}
			xw := holderWins(x.dec, x.kind, x.id, y.dec, y.kind, y.id)
			yw := holderWins(y.dec, y.kind, y.id, x.dec, x.kind, x.id)
			if xw == yw {
				t.Fatalf("claim order not antisymmetric: %+v vs %+v both %v", x, y, xw)
			}
		}
	}
}

// TestAnnounceImportEvictsStaleRestore: the migration-vs-failover race at
// the wire level. A restore lands a stale copy on one node; the migration
// import's synchronous claim broadcast must evict it, leaving one owner.
func TestAnnounceImportEvictsStaleRestore(t *testing.T) {
	nodes := []*healNode{startHealNode(t, "n1"), startHealNode(t, "n2")}
	connect(t, nodes)
	a, b := nodes[0], nodes[1]

	const stream = 11
	driveStream(a, stream, 2)
	snap, _ := a.srv.SnapshotStream(stream)

	// b holds a stale restored copy.
	if err := b.srv.ImportStream(stream, snap); err != nil {
		t.Fatal(err)
	}
	b.mgr.mu.Lock()
	b.mgr.acquired[stream] = netserve.ClaimKindRestore
	b.mgr.mu.Unlock()

	// a's session advances, then a (re-)announces it as an import — the
	// path a PUT /v1/streams/{id} migration takes.
	driveStream(a, stream, 3)
	cur, _ := a.srv.SnapshotStream(stream)
	if sup := a.mgr.AnnounceImport(stream, cur.Decisions); sup {
		t.Fatal("fresher import superseded by a stale restore")
	}
	if holds(b, stream) {
		t.Fatal("stale restored copy survived the import claim")
	}
	if !holds(a, stream) {
		t.Fatal("importing node lost its own session")
	}
}

// TestMigrationRacesFailover runs the full race, concurrently, over the
// wire: a client migrates a stream to one node at the same moment the
// membership layer declares the old owner dead and the ring successor
// restores the replica. Whatever the interleaving, the claim total order
// (import beats restore at equal decisions) must leave exactly one holder
// — the migration destination — and never a fork.
func TestMigrationRacesFailover(t *testing.T) {
	for it := 0; it < 4; it++ {
		nodes := []*healNode{startHealNode(t, "n1"), startHealNode(t, "n2"), startHealNode(t, "n3")}
		connect(t, nodes)
		victim := nodes[0]

		stream := 20 + it
		driveStream(victim, stream, 3)
		if victim.mgr.ReplicateOnce(context.Background()) != 1 {
			t.Fatal("replica not shipped")
		}

		// The migration destination is deliberately NOT the ring successor,
		// so the two paths land the stream on different nodes and the claim
		// protocol has a real conflict to arbitrate.
		succURL := hashring.Successor(victim.agent.Members(), victim.url, stream)
		var succ, dest *healNode
		for _, n := range nodes[1:] {
			if n.url == succURL {
				succ = n
			} else {
				dest = n
			}
		}
		if succ == nil || dest == nil {
			t.Fatal("could not split survivors into successor and destination")
		}

		// The migration carries the same snapshot the replica holds: a
		// decision-count tie, the hardest case for the arbitration.
		snap, _ := victim.srv.SnapshotStream(stream)
		blob, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(netserve.ImportRequest{
			SnapshotB64: base64.StdEncoding.EncodeToString(blob),
		})

		// Fire both paths concurrently, alternating which goes first so the
		// iterations cover both orderings.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if it%2 == 0 {
				time.Sleep(time.Duration(it) * time.Millisecond)
			}
			declareDead(nodes, victim)
		}()
		go func() {
			defer wg.Done()
			if it%2 == 1 {
				time.Sleep(time.Duration(it) * time.Millisecond)
			}
			req, err := http.NewRequest(http.MethodPut,
				fmt.Sprintf("%s/v1/streams/%d", dest.url, stream), bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("iteration %d: migration import status %d, want 200", it, resp.StatusCode)
			}
		}()
		wg.Wait()

		// The import must win and the restore must lose — in every
		// interleaving: a restore that landed first is evicted by the
		// import's claim broadcast; a restore that lands second is refused
		// by the destination's claim and self-evicts.
		waitFor(t, fmt.Sprintf("iteration %d: stream %d sole on destination", it, stream), func() bool {
			return holds(dest, stream) && !holds(succ, stream)
		})
		got, ok := dest.srv.SnapshotStream(stream)
		if !ok || got.Decisions != snap.Decisions {
			t.Fatalf("iteration %d: winner has %d decisions, want %d", it, got.Decisions, snap.Decisions)
		}
	}
}

// TestStoreReplicaKeepsFreshest: replication is unordered on the wire; a
// stale blob must never clobber a fresher one from the same owner.
func TestStoreReplicaKeepsFreshest(t *testing.T) {
	n := startHealNode(t, "n1")
	snap := alert.SessionSnapshot{}

	n.mgr.StoreReplica(1, "n2", 10, snap)
	n.mgr.StoreReplica(1, "n2", 4, snap) // stale duplicate: dropped
	if rs := n.mgr.Replicas(); len(rs) != 1 || rs[0].Decisions != 10 {
		t.Fatalf("stale replica overwrote fresher: %+v", rs)
	}
	n.mgr.StoreReplica(1, "n2", 12, snap) // fresher: kept
	if rs := n.mgr.Replicas(); rs[0].Decisions != 12 {
		t.Fatalf("fresher replica dropped: %+v", rs)
	}
	// New owner (the stream moved): takes over regardless of count.
	n.mgr.StoreReplica(1, "n3", 2, snap)
	if rs := n.mgr.Replicas(); rs[0].Owner != "n3" || rs[0].Decisions != 2 {
		t.Fatalf("ownership change not honored: %+v", rs)
	}
}

// TestRestoringShedsWith503: while a stream is mid-restore the front end
// sheds its decides with 503 + Retry-After — the bounded failover window —
// and serves again the moment the hold clears.
func TestRestoringShedsWith503(t *testing.T) {
	n := startHealNode(t, "n1")
	connect(t, []*healNode{n})

	n.mgr.mu.Lock()
	n.mgr.restoring[3] = true
	n.mgr.mu.Unlock()

	body := `{"stream":3,"spec":{"objective":"min_energy","deadline_s":0.5,"accuracy_goal":0.9}}`
	post := func() *http.Response {
		resp, err := http.Post(n.url+"/v1/decide", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-restore decide: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("mid-restore 503 missing Retry-After")
	}

	n.mgr.mu.Lock()
	delete(n.mgr.restoring, 3)
	n.mgr.mu.Unlock()
	resp = post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore decide: status %d, want 200", resp.StatusCode)
	}
}
