package dnn

// This file defines the concrete model families the evaluation uses
// (Table 2 / Table 3): the benchmark networks VGG16, ResNet50, word-RNN and
// BERT for the variability study (Figures 4–5), and the adaptation
// candidate sets — a Sparse ResNet ladder plus a Depth-Nest anytime network
// for image classification, and an RNN width ladder plus a Width-Nest
// anytime network for sentence prediction.
//
// Reference latencies are seconds on CPU2 at its 100 W cap. Accuracies for
// the image family bracket the 90–94 % band visible in Figure 9's accuracy
// panel. Anytime networks trade a small amount of final accuracy for their
// ladder ("Anytime DNNs generally sacrifice accuracy for flexibility",
// §3.5) — each nest stage sits slightly below the traditional model of
// equal latency.

// VGG16 is IMG1 in Table 2.
func VGG16() *Model {
	return &Model{
		Name: "VGG16", Family: "VGG", Task: ImageClassification,
		RefLatency: 0.28, Accuracy: 0.901, QFail: 0.005,
		UtilFactor: 1.0, MemGB: 3.1,
	}
}

// ResNet50 is IMG2 in Table 2 and the subject of Figure 3's power sweep.
func ResNet50() *Model {
	return &Model{
		Name: "ResNet50", Family: "ResNet", Task: ImageClassification,
		RefLatency: 0.103, Accuracy: 0.930, QFail: 0.005,
		UtilFactor: 0.97, MemGB: 2.2,
	}
}

// WordRNN is NLP1 in Table 2: word-level next-token prediction on Penn
// Treebank. RefLatency is per word; sentence latency scales with length,
// which is the dominant variance source in Figure 4.
func WordRNN() *Model {
	return &Model{
		Name: "WordRNN", Family: "RNN", Task: SentencePrediction,
		RefLatency: 0.021, Accuracy: 0.715, QFail: 0.45,
		UtilFactor: 0.88, MemGB: 0.4,
	}
}

// BERT is NLP2 in Table 2: question answering on SQuAD.
func BERT() *Model {
	return &Model{
		Name: "BERT", Family: "BERT", Task: QuestionAnswering,
		RefLatency: 0.41, Accuracy: 0.885, QFail: 0.02,
		UtilFactor: 1.0, MemGB: 2.6,
	}
}

// BenchmarkModels returns the four Table 2 networks keyed by the paper's
// setting IDs (IMG1, IMG2, NLP1, NLP2), in that order.
func BenchmarkModels() []*Model {
	return []*Model{VGG16(), ResNet50(), WordRNN(), BERT()}
}

// SparseResNetFamily returns the traditional image-classification candidate
// ladder: five sparsified ResNet variants spanning a 7x latency range and a
// 90.2–94.5 % accuracy band.
func SparseResNetFamily() []*Model {
	specs := []struct {
		name string
		lat  float64
		acc  float64
		mem  float64
	}{
		{"SparseResNet-XS", 0.022, 0.902, 1.5},
		{"SparseResNet-S", 0.040, 0.919, 1.8},
		{"SparseResNet-M", 0.072, 0.931, 2.1},
		{"SparseResNet-L", 0.115, 0.940, 2.4},
		{"SparseResNet-XL", 0.158, 0.945, 2.7},
	}
	out := make([]*Model, 0, len(specs))
	for _, s := range specs {
		out = append(out, &Model{
			Name: s.name, Family: "SparseResNet", Task: ImageClassification,
			RefLatency: s.lat, Accuracy: s.acc, QFail: 0.005,
			UtilFactor: 0.97, MemGB: s.mem,
		})
	}
	return out
}

// DepthNest returns the nested-depth anytime image classifier (Table 3's
// "Depth-Nest", built on the nested architecture of the paper's anytime
// citation). Its outputs ladder steeply — shallow sub-networks genuinely
// lose accuracy — up to a 94.35 % final output, a hair under
// SparseResNet-XL at essentially the same latency: the flexibility tax
// §3.5 describes.
func DepthNest() *Model {
	return &Model{
		Name: "DepthNest", Family: "SparseResNet", Task: ImageClassification,
		RefLatency: 0.165, Accuracy: 0.9435, QFail: 0.005,
		UtilFactor: 0.97, MemGB: 2.8,
		Stages: []Stage{
			{LatencyFrac: 0.10, Accuracy: 0.828},
			{LatencyFrac: 0.17, Accuracy: 0.869},
			{LatencyFrac: 0.28, Accuracy: 0.897},
			{LatencyFrac: 0.42, Accuracy: 0.9185},
			{LatencyFrac: 0.58, Accuracy: 0.930},
			{LatencyFrac: 0.75, Accuracy: 0.9365},
			{LatencyFrac: 0.88, Accuracy: 0.9405},
			{LatencyFrac: 1.0, Accuracy: 0.9435},
		},
	}
}

// ImageCandidates returns the full image-classification candidate set used
// by ALERT in the evaluation: the traditional ladder plus the anytime nest.
func ImageCandidates() []*Model {
	return append(SparseResNetFamily(), DepthNest())
}

// RNNFamily returns the traditional sentence-prediction ladder: four RNN
// widths. Latency is per word; Accuracy is the next-word quality that the
// perplexity mapping in metric.go converts for reporting.
func RNNFamily() []*Model {
	specs := []struct {
		name string
		lat  float64
		acc  float64
	}{
		{"RNN-W1", 0.006, 0.640},
		{"RNN-W2", 0.011, 0.672},
		{"RNN-W3", 0.017, 0.697},
		{"RNN-W4", 0.024, 0.718},
	}
	out := make([]*Model, 0, len(specs))
	for _, s := range specs {
		out = append(out, &Model{
			Name: s.name, Family: "RNN", Task: SentencePrediction,
			RefLatency: s.lat, Accuracy: s.acc, QFail: 0.45,
			UtilFactor: 0.88, MemGB: 0.4,
		})
	}
	return out
}

// WidthNest returns the nested-width anytime RNN (Table 3's "Width-Nest").
func WidthNest() *Model {
	return &Model{
		Name: "WidthNest", Family: "RNN", Task: SentencePrediction,
		RefLatency: 0.025, Accuracy: 0.713, QFail: 0.45,
		UtilFactor: 0.88, MemGB: 0.5,
		Stages: []Stage{
			{LatencyFrac: 0.16, Accuracy: 0.572},
			{LatencyFrac: 0.30, Accuracy: 0.617},
			{LatencyFrac: 0.46, Accuracy: 0.651},
			{LatencyFrac: 0.64, Accuracy: 0.678},
			{LatencyFrac: 0.82, Accuracy: 0.698},
			{LatencyFrac: 1.0, Accuracy: 0.713},
		},
	}
}

// SentenceCandidates returns the full sentence-prediction candidate set.
func SentenceCandidates() []*Model {
	return append(RNNFamily(), WidthNest())
}

// CandidatesFor returns the evaluation candidate set for a task.
func CandidatesFor(task Task) []*Model {
	switch task {
	case SentencePrediction:
		return SentenceCandidates()
	default:
		return ImageCandidates()
	}
}
