// Package dnn provides the application-level half of ALERT's configuration
// space: inference models with profiled latency/accuracy/energy tradeoffs.
//
// The paper evaluates real networks (42 TF-Slim ImageNet classifiers, a
// Sparse ResNet family, word-level RNNs, BERT) whose weights cannot be run
// offline in pure Go. ALERT itself, however, never inspects weights: it
// consumes each candidate's *profile* — reference latency, accuracy, memory
// footprint, and (for anytime networks) the stage ladder of Eq. 13 — and the
// runtime measurements the executor feeds back. This package therefore
// models networks as calibrated profiles whose simulated execution (see
// internal/sim) reproduces the latency structure of Figures 2, 4 and 5.
package dnn

import (
	"fmt"
	"sort"
)

// Task identifies the inference task a model solves (Table 2).
type Task int

const (
	// ImageClassification covers IMG1 (VGG16) and IMG2 (ResNet50) plus the
	// 42-model zoo and the Sparse ResNet evaluation family.
	ImageClassification Task = iota
	// SentencePrediction is NLP1: word-level next-token prediction on Penn
	// Treebank with a per-sentence shared deadline.
	SentencePrediction
	// QuestionAnswering is NLP2: BERT on SQuAD.
	QuestionAnswering
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case ImageClassification:
		return "ImageClassification"
	case SentencePrediction:
		return "SentencePrediction"
	case QuestionAnswering:
		return "QuestionAnswering"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Stage is one rung of an anytime network's output ladder: after
// LatencyFrac of the network's full reference latency has elapsed, an
// output of the given Accuracy is available (Eq. 13).
type Stage struct {
	// LatencyFrac is the cumulative fraction of the full-network latency at
	// which this stage's output materializes; the final stage is 1.0.
	LatencyFrac float64
	// Accuracy is the task-quality of this stage's output in [0, 1].
	Accuracy float64
}

// Model is one candidate in ALERT's application-level adaptation set D.
type Model struct {
	// Name uniquely identifies the model within a candidate set.
	Name string
	// Family groups models that share an architecture lineage (e.g.
	// "SparseResNet"); ALERT's global-slowdown assumption rests on the
	// code-path similarity within and across such families (§3.3, Idea 1).
	Family string
	// Task is the inference task.
	Task Task

	// RefLatency is the reference inference latency in seconds for one
	// input, profiled on CPU2 at its maximum power cap with no contention.
	// Every other platform/cap latency derives from it through the
	// platform speed law; the runtime corrects the residual with ξ.
	RefLatency float64

	// Accuracy is the profiled task quality in [0, 1] when inference
	// completes before the deadline (top-5 accuracy for image tasks,
	// next-word quality for sentence prediction, F1 for QA).
	Accuracy float64

	// QFail is the quality credited when the deadline passes with no
	// output: a random guess for traditional networks (§3.3, Eq. 3).
	QFail float64

	// UtilFactor scales the platform's inference power draw: a model that
	// stresses memory more than ALUs does not quite saturate the cap.
	// 1.0 means the cap is fully consumed.
	UtilFactor float64

	// MemGB is the resident-set footprint used for platform fit checks.
	MemGB float64

	// Stages is nil for traditional networks. For anytime networks it is
	// the ascending output ladder; the last stage's Accuracy equals the
	// model's Accuracy field.
	Stages []Stage
}

// IsAnytime reports whether the model produces intermediate outputs.
func (m *Model) IsAnytime() bool { return len(m.Stages) > 0 }

// Validate checks internal consistency; the public API calls it on every
// candidate set so malformed profiles fail fast instead of corrupting the
// controller's expectations.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("dnn: model with empty name")
	}
	if m.RefLatency <= 0 {
		return fmt.Errorf("dnn: model %s has non-positive RefLatency %g", m.Name, m.RefLatency)
	}
	if m.Accuracy <= 0 || m.Accuracy > 1 {
		return fmt.Errorf("dnn: model %s accuracy %g outside (0,1]", m.Name, m.Accuracy)
	}
	if m.QFail < 0 || m.QFail > m.Accuracy {
		return fmt.Errorf("dnn: model %s QFail %g outside [0, accuracy]", m.Name, m.QFail)
	}
	if m.UtilFactor <= 0 || m.UtilFactor > 1.2 {
		return fmt.Errorf("dnn: model %s UtilFactor %g implausible", m.Name, m.UtilFactor)
	}
	if !sort.SliceIsSorted(m.Stages, func(i, j int) bool {
		return m.Stages[i].LatencyFrac < m.Stages[j].LatencyFrac
	}) {
		return fmt.Errorf("dnn: model %s stages not ascending in latency", m.Name)
	}
	for i, s := range m.Stages {
		if s.LatencyFrac <= 0 || s.LatencyFrac > 1 {
			return fmt.Errorf("dnn: model %s stage %d latency frac %g outside (0,1]", m.Name, i, s.LatencyFrac)
		}
		if s.Accuracy < m.QFail || s.Accuracy > 1 {
			return fmt.Errorf("dnn: model %s stage %d accuracy %g outside [QFail,1]", m.Name, i, s.Accuracy)
		}
		if i > 0 && s.Accuracy < m.Stages[i-1].Accuracy {
			return fmt.Errorf("dnn: model %s stage %d accuracy decreases", m.Name, i)
		}
	}
	if m.IsAnytime() {
		last := m.Stages[len(m.Stages)-1]
		if last.LatencyFrac != 1 {
			return fmt.Errorf("dnn: model %s final stage frac %g != 1", m.Name, last.LatencyFrac)
		}
		if last.Accuracy != m.Accuracy {
			return fmt.Errorf("dnn: model %s final stage accuracy %g != model accuracy %g",
				m.Name, last.Accuracy, m.Accuracy)
		}
	}
	return nil
}

// QualityAt returns the quality obtained if execution is cut off after
// `elapsedFrac` of the model's full latency (Eq. 3 for traditional models,
// Eq. 13 for anytime models).
func (m *Model) QualityAt(elapsedFrac float64) float64 {
	if !m.IsAnytime() {
		if elapsedFrac >= 1 {
			return m.Accuracy
		}
		return m.QFail
	}
	q := m.QFail
	for _, s := range m.Stages {
		if elapsedFrac >= s.LatencyFrac {
			q = s.Accuracy
		} else {
			break
		}
	}
	return q
}

// ValidateSet validates every model in a candidate set and checks name
// uniqueness and task homogeneity (one controller instance serves one task).
func ValidateSet(models []*Model) error {
	if len(models) == 0 {
		return fmt.Errorf("dnn: empty candidate set")
	}
	seen := make(map[string]bool, len(models))
	task := models[0].Task
	for _, m := range models {
		if err := m.Validate(); err != nil {
			return err
		}
		if seen[m.Name] {
			return fmt.Errorf("dnn: duplicate model name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Task != task {
			return fmt.Errorf("dnn: mixed tasks in candidate set (%v and %v)", task, m.Task)
		}
	}
	return nil
}

// Fastest returns the model with the smallest reference latency; the
// Sys-only baseline pins itself to this model (§5.1).
func Fastest(models []*Model) *Model {
	best := models[0]
	for _, m := range models[1:] {
		if m.RefLatency < best.RefLatency {
			best = m
		}
	}
	return best
}

// MostAccurate returns the model with the highest final accuracy.
func MostAccurate(models []*Model) *Model {
	best := models[0]
	for _, m := range models[1:] {
		if m.Accuracy > best.Accuracy {
			best = m
		}
	}
	return best
}

// Traditional filters the set down to non-anytime models.
func Traditional(models []*Model) []*Model {
	var out []*Model
	for _, m := range models {
		if !m.IsAnytime() {
			out = append(out, m)
		}
	}
	return out
}

// Anytime filters the set down to anytime models.
func Anytime(models []*Model) []*Model {
	var out []*Model
	for _, m := range models {
		if m.IsAnytime() {
			out = append(out, m)
		}
	}
	return out
}
