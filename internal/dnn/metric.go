package dnn

import "math"

// Sentence prediction quality is reported as perplexity in the paper
// (Figure 10) while the controller internally maximizes a bounded quality
// score. This mapping converts between the two: an exponential link, the
// standard relationship between log-likelihood-style scores and perplexity.
// The constants are calibrated so the evaluation's word-RNN ladder lands in
// the 120–150 perplexity band of Figure 10(a) and degrades toward 250–300
// under memory contention, as in Figure 10(b).
const (
	pplRefQuality = 0.73  // quality at which perplexity = pplRefValue
	pplRefValue   = 110.0 // Penn Treebank word-level RNN ballpark
	pplSlope      = 6.0   // e-folds of perplexity per unit quality
)

// PerplexityFromQuality converts a controller quality score in [0, 1] to a
// Penn Treebank-scale perplexity. Lower quality ⇒ exponentially higher
// perplexity; a deadline miss (quality = QFail) maps to the fallback
// unigram predictor's perplexity.
func PerplexityFromQuality(q float64) float64 {
	return pplRefValue * math.Exp((pplRefQuality-q)*pplSlope)
}

// QualityFromPerplexity inverts PerplexityFromQuality.
func QualityFromPerplexity(ppl float64) float64 {
	if ppl <= 0 {
		return 1
	}
	return pplRefQuality - math.Log(ppl/pplRefValue)/pplSlope
}
