package dnn

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/alert-project/alert/internal/platform"
)

func TestBenchmarkModelsValid(t *testing.T) {
	for _, m := range BenchmarkModels() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestCandidateSetsValid(t *testing.T) {
	if err := ValidateSet(ImageCandidates()); err != nil {
		t.Error(err)
	}
	if err := ValidateSet(SentenceCandidates()); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []*Model{
		{Name: "", RefLatency: 1, Accuracy: 0.9, UtilFactor: 1},
		{Name: "neg-lat", RefLatency: -1, Accuracy: 0.9, UtilFactor: 1},
		{Name: "acc-over", RefLatency: 1, Accuracy: 1.5, UtilFactor: 1},
		{Name: "qfail-over", RefLatency: 1, Accuracy: 0.9, QFail: 0.95, UtilFactor: 1},
		{Name: "bad-util", RefLatency: 1, Accuracy: 0.9, UtilFactor: 0},
		{Name: "stage-order", RefLatency: 1, Accuracy: 0.9, UtilFactor: 1,
			Stages: []Stage{{0.5, 0.8}, {0.3, 0.7}}},
		{Name: "stage-final", RefLatency: 1, Accuracy: 0.9, UtilFactor: 1,
			Stages: []Stage{{0.5, 0.8}, {0.9, 0.9}}},
		{Name: "stage-acc-drop", RefLatency: 1, Accuracy: 0.9, UtilFactor: 1,
			Stages: []Stage{{0.5, 0.85}, {1.0, 0.8}}},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
}

func TestValidateSetRejectsDuplicatesAndMixedTasks(t *testing.T) {
	a := ResNet50()
	b := ResNet50()
	if err := ValidateSet([]*Model{a, b}); err == nil {
		t.Error("duplicate names should fail")
	}
	if err := ValidateSet([]*Model{ResNet50(), WordRNN()}); err == nil {
		t.Error("mixed tasks should fail")
	}
	if err := ValidateSet(nil); err == nil {
		t.Error("empty set should fail")
	}
}

func TestQualityAtTraditional(t *testing.T) {
	m := ResNet50()
	if got := m.QualityAt(0.99); got != m.QFail {
		t.Errorf("partial execution quality = %g, want QFail", got)
	}
	if got := m.QualityAt(1.0); got != m.Accuracy {
		t.Errorf("complete execution quality = %g, want accuracy", got)
	}
}

func TestQualityAtAnytimeLadder(t *testing.T) {
	m := DepthNest()
	if got := m.QualityAt(0.05); got != m.QFail {
		t.Errorf("before first stage: %g, want QFail", got)
	}
	if got := m.QualityAt(1.0); got != m.Accuracy {
		t.Errorf("full ladder: %g, want final accuracy", got)
	}
	// Monotone non-decreasing in elapsed fraction.
	prev := -1.0
	for f := 0.0; f <= 1.0; f += 0.01 {
		q := m.QualityAt(f)
		if q < prev {
			t.Fatalf("QualityAt not monotone at %g", f)
		}
		prev = q
	}
	// Exactly at a stage boundary the stage counts as delivered.
	if got := m.QualityAt(m.Stages[2].LatencyFrac); got != m.Stages[2].Accuracy {
		t.Errorf("at stage boundary: %g, want %g", got, m.Stages[2].Accuracy)
	}
}

func TestFastestMostAccurateFilters(t *testing.T) {
	set := ImageCandidates()
	if Fastest(set).Name != "SparseResNet-XS" {
		t.Errorf("fastest = %s", Fastest(set).Name)
	}
	if MostAccurate(set).Name != "SparseResNet-XL" {
		t.Errorf("most accurate = %s", MostAccurate(set).Name)
	}
	if n := len(Traditional(set)); n != 5 {
		t.Errorf("traditional count = %d", n)
	}
	if n := len(Anytime(set)); n != 1 {
		t.Errorf("anytime count = %d", n)
	}
}

func TestZooCalibration(t *testing.T) {
	zoo := ImageNetZoo(42)
	if len(zoo) != 42 {
		t.Fatalf("zoo size = %d, want 42 (§2.1)", len(zoo))
	}
	if err := ValidateSet(zoo); err != nil {
		t.Fatal(err)
	}
	minLat, maxLat := math.Inf(1), 0.0
	minErr, maxErr := math.Inf(1), 0.0
	for _, m := range zoo {
		lat, errPct := m.RefLatency, 1-m.Accuracy
		minLat, maxLat = math.Min(minLat, lat), math.Max(maxLat, lat)
		minErr, maxErr = math.Min(minErr, errPct), math.Max(maxErr, errPct)
	}
	if r := maxLat / minLat; r < 15 || r > 21 {
		t.Errorf("latency span %.1fx, paper reports ~18x", r)
	}
	if r := maxErr / minErr; r < 6.5 || r > 9 {
		t.Errorf("error span %.1fx, paper reports ~7.8x", r)
	}
}

func TestZooDeterministic(t *testing.T) {
	a, b := ImageNetZoo(7), ImageNetZoo(7)
	for i := range a {
		if a[i].Name != b[i].Name || a[i].RefLatency != b[i].RefLatency ||
			a[i].Accuracy != b[i].Accuracy {
			t.Fatal("zoo not deterministic under a fixed seed")
		}
	}
}

func TestZooLowerHullDominance(t *testing.T) {
	zoo := ImageNetZoo(42)
	hull := ZooLowerHull(zoo)
	if len(hull) < 3 {
		t.Fatalf("hull too small: %d", len(hull))
	}
	// Hull must be sorted by latency with strictly decreasing error.
	for i := 1; i < len(hull); i++ {
		if hull[i].RefLatency <= hull[i-1].RefLatency {
			t.Error("hull latencies not increasing")
		}
		if hull[i].Accuracy <= hull[i-1].Accuracy {
			t.Error("hull accuracies not increasing")
		}
	}
	// No model may dominate a hull point (faster AND more accurate).
	for _, h := range hull {
		for _, m := range zoo {
			if m.RefLatency < h.RefLatency && m.Accuracy > h.Accuracy {
				t.Errorf("%s dominates hull point %s", m.Name, h.Name)
			}
		}
	}
}

func TestProfileTable(t *testing.T) {
	plat := platform.CPU2()
	prof, err := Profile(plat, ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumModels() != 6 || prof.NumCaps() != len(plat.Caps()) {
		t.Fatalf("table dims %dx%d", prof.NumModels(), prof.NumCaps())
	}
	// Latency decreases with cap; power non-decreasing with cap.
	for i := 0; i < prof.NumModels(); i++ {
		for j := 1; j < prof.NumCaps(); j++ {
			if prof.At(i, j) >= prof.At(i, j-1) {
				t.Fatalf("latency not decreasing for model %d at cap %d", i, j)
			}
			if prof.PowerAt(i, j) < prof.PowerAt(i, j-1) {
				t.Fatalf("power decreasing for model %d at cap %d", i, j)
			}
		}
	}
	// Reference anchoring: ResNet-style model at CPU2 top cap equals its
	// reference latency.
	xl := prof.ModelIndex("SparseResNet-XL")
	if got := prof.At(xl, prof.NumCaps()-1); math.Abs(got-0.158) > 1e-9 {
		t.Errorf("reference latency = %g", got)
	}
}

func TestProfileRejectsOOM(t *testing.T) {
	if _, err := Profile(platform.Embedded(), ImageCandidates()); err == nil {
		t.Error("image models should OOM on the embedded board (Fig. 4)")
	}
	if _, err := Profile(platform.Embedded(), SentenceCandidates()); err != nil {
		t.Errorf("RNN should fit the embedded board: %v", err)
	}
}

func TestCapIndexAndModelIndex(t *testing.T) {
	prof, _ := Profile(platform.CPU1(), ImageCandidates())
	if got := prof.CapIndex(45); prof.Caps[got] != 45 {
		t.Errorf("CapIndex(45) -> %g", prof.Caps[got])
	}
	if got := prof.CapIndex(21); prof.Caps[got] != 20 && prof.Caps[got] != 22.5 {
		t.Errorf("CapIndex(21) -> %g", prof.Caps[got])
	}
	if prof.ModelIndex("nope") != -1 {
		t.Error("unknown model should be -1")
	}
	if idx := prof.ModelIndex("DepthNest"); prof.Models[idx].Name != "DepthNest" {
		t.Error("ModelIndex roundtrip failed")
	}
}

func TestFastestAt(t *testing.T) {
	prof, _ := Profile(platform.CPU1(), ImageCandidates())
	top := prof.NumCaps() - 1
	i := prof.FastestAt(top)
	for j := 0; j < prof.NumModels(); j++ {
		if prof.At(j, top) < prof.At(i, top) {
			t.Fatal("FastestAt not minimal")
		}
	}
}

func TestPerplexityMapping(t *testing.T) {
	// Round trip.
	for _, q := range []float64{0.4, 0.55, 0.66, 0.72} {
		ppl := PerplexityFromQuality(q)
		if back := QualityFromPerplexity(ppl); math.Abs(back-q) > 1e-9 {
			t.Errorf("roundtrip %g -> %g", q, back)
		}
	}
	// Monotone decreasing: better quality, lower perplexity.
	if PerplexityFromQuality(0.7) >= PerplexityFromQuality(0.6) {
		t.Error("perplexity should fall as quality rises")
	}
	// Calibration: the top RNN lands in Fig. 10(a)'s 110-160 band.
	top := WordRNN().Accuracy
	if p := PerplexityFromQuality(top); p < 90 || p > 160 {
		t.Errorf("top-model perplexity %g outside the Fig. 10 band", p)
	}
}

func TestQualityAtProperty(t *testing.T) {
	m := DepthNest()
	f := func(a, b float64) bool {
		fa := math.Mod(math.Abs(a), 1.2)
		fb := math.Mod(math.Abs(b), 1.2)
		lo, hi := math.Min(fa, fb), math.Max(fa, fb)
		return m.QualityAt(lo) <= m.QualityAt(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
