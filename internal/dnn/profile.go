package dnn

import (
	"fmt"

	"github.com/alert-project/alert/internal/platform"
)

// ProfileTable is the offline profile t_prof[i][j]: expected inference
// latency for model i under power cap j in the nominal (contention-free)
// environment (§3.3). ALERT's entire prediction machinery is this table
// rescaled by the global slowdown factor ξ.
type ProfileTable struct {
	Platform *platform.Platform
	Models   []*Model
	Caps     []float64
	// Latency[i][j] is seconds for models[i] at caps[j].
	Latency [][]float64
	// Power[i][j] is the measured inference power draw in watts for
	// models[i] under caps[j] — profiled offline alongside latency, and
	// the p_{i,j} of the paper's Eq. 9. It differs from the raw cap when
	// the workload cannot saturate it.
	Power [][]float64
}

// Profile builds the table for a model set on a platform. Models that do
// not fit the platform's memory are rejected, matching the OOMs Figure 4
// reports on the Embedded board.
func Profile(p *platform.Platform, models []*Model) (*ProfileTable, error) {
	if err := ValidateSet(models); err != nil {
		return nil, err
	}
	for _, m := range models {
		if !p.Fits(m.MemGB) {
			return nil, fmt.Errorf("dnn: model %s (%.1f GB) exceeds %s memory (%.0f GB)",
				m.Name, m.MemGB, p.Name, p.MemGB)
		}
	}
	caps := p.Caps()
	lat := make([][]float64, len(models))
	pow := make([][]float64, len(models))
	for i, m := range models {
		lat[i] = make([]float64, len(caps))
		pow[i] = make([]float64, len(caps))
		for j, c := range caps {
			lat[i][j] = NominalLatency(m, p, c)
			pow[i][j] = p.InferencePower(c) * m.UtilFactor
		}
	}
	return &ProfileTable{Platform: p, Models: models, Caps: caps, Latency: lat, Power: pow}, nil
}

// NominalLatency is the deterministic latency model shared by profiling and
// simulation: reference latency divided by the platform's absolute speed at
// the cap (CPU2 at 100 W defines speed 1.0).
func NominalLatency(m *Model, p *platform.Platform, cap float64) float64 {
	return m.RefLatency / p.Speed(cap)
}

// At returns t_prof for the given model and cap indices.
func (t *ProfileTable) At(model, cap int) float64 { return t.Latency[model][cap] }

// PowerAt returns the profiled inference power p_{i,j} in watts.
func (t *ProfileTable) PowerAt(model, cap int) float64 { return t.Power[model][cap] }

// NumModels returns the number of profiled models.
func (t *ProfileTable) NumModels() int { return len(t.Models) }

// NumCaps returns the number of cap rungs.
func (t *ProfileTable) NumCaps() int { return len(t.Caps) }

// CapIndex returns the index of the ladder rung nearest to w.
func (t *ProfileTable) CapIndex(w float64) int {
	best, bestDiff := 0, -1.0
	for j, c := range t.Caps {
		d := c - w
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			best, bestDiff = j, d
		}
	}
	return best
}

// ModelIndex returns the index of the named model, or -1.
func (t *ProfileTable) ModelIndex(name string) int {
	for i, m := range t.Models {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// FastestAt returns the model index with the lowest profiled latency at the
// highest cap — the configuration the infeasibility fallback reaches for.
func (t *ProfileTable) FastestAt(cap int) int {
	best := 0
	for i := range t.Models {
		if t.Latency[i][cap] < t.Latency[best][cap] {
			best = i
		}
	}
	return best
}
