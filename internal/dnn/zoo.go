package dnn

import (
	"fmt"
	"math"

	"github.com/alert-project/alert/internal/mathx"
)

// The 42-model ImageNet zoo reproduces the tradeoff structure the paper
// measures in Figure 2 (CPU2): reference latencies spanning 18x, top-5
// error rates spanning 7.8x (about 4.5 %–35 %), per-inference energy
// spanning more than 20x, and a lower convex hull of Pareto-efficient
// designs with most models strictly above it.
//
// Calibration targets, straight from §2.1:
//   - "the fastest model runs almost 18x faster than the slowest one"
//   - "the most accurate model has about 7.8x lower error rate than the
//     least accurate"
//   - "more than 20x of energy usage"
//   - "all the networks sitting above the lower-convex-hull curve
//     represent sub-optimal tradeoffs"
const (
	zooFastest   = 0.0167 // s on CPU2 @ 100 W
	zooSlowest   = 0.30   // 18x slower
	zooErrFloor  = 4.5    // top-5 error %, most accurate
	zooErrCeil   = 35.1   // 7.8x higher
	zooHullDecay = 0.055  // latency scale (s) of the hull's diminishing returns
)

// hullError returns the Pareto-frontier top-5 error (in percent) for a model
// of the given reference latency: exponentially diminishing returns, the
// shape every published ImageNet latency/accuracy scatter exhibits.
func hullError(lat float64) float64 {
	return zooErrFloor + (zooErrCeil-zooErrFloor)*math.Exp(-(lat-zooFastest)/zooHullDecay)
}

// ImageNetZoo generates the 42-model zoo deterministically from a seed. The
// first 14 models lie on the lower convex hull (log-spaced latencies); the
// remaining 28 sit strictly above it with architecture-lottery error
// offsets, mirroring the real TF-Slim population where most designs are
// dominated.
func ImageNetZoo(seed int64) []*Model {
	rng := mathx.NewRand(seed)
	models := make([]*Model, 0, 42)

	const hullCount = 14
	logMin, logMax := math.Log(zooFastest), math.Log(zooSlowest)
	for i := 0; i < hullCount; i++ {
		lat := math.Exp(logMin + (logMax-logMin)*float64(i)/float64(hullCount-1))
		err := hullError(lat)
		models = append(models, zooModel(fmt.Sprintf("hull-%02d", i), lat, err, rng))
	}
	for i := 0; i < 42-hullCount; i++ {
		lat := math.Exp(rng.Uniform(logMin, logMax))
		// Dominated designs: same latency, strictly more error. The offset
		// is biased small — most architectures land near the frontier, a
		// few are far off, as in Figure 2's scatter.
		excess := rng.Exponential(3.5) + 0.4
		err := math.Min(hullError(lat)+excess, zooErrCeil)
		models = append(models, zooModel(fmt.Sprintf("zoo-%02d", i), lat, err, rng))
	}
	return models
}

func zooModel(name string, lat, errPct float64, rng *mathx.Rand) *Model {
	return &Model{
		Name:       name,
		Family:     "ImageNetZoo",
		Task:       ImageClassification,
		RefLatency: lat,
		Accuracy:   1 - errPct/100,
		// ImageNet top-5 random guess over 1000 classes.
		QFail: 0.005,
		// Memory- vs compute-bound variation widens the energy span past
		// the bare 18x latency span to the paper's ">20x".
		UtilFactor: rng.Uniform(0.85, 1.05),
		MemGB:      rng.Uniform(1.0, 4.0),
	}
}

// ZooLowerHull returns the subset of models on the latency–error lower
// convex hull (the Pareto-efficient designs), sorted by latency. It is the
// reference curve drawn in Figure 2.
func ZooLowerHull(models []*Model) []*Model {
	// Sort by latency; sweep keeping the lower-left staircase, then prune
	// to convexity in (latency, error) space.
	sorted := append([]*Model(nil), models...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].RefLatency < sorted[j-1].RefLatency; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// Keep only models not dominated (no faster model with lower error).
	var staircase []*Model
	bestErr := math.Inf(1)
	for _, m := range sorted {
		err := 1 - m.Accuracy
		if err < bestErr {
			staircase = append(staircase, m)
			bestErr = err
		}
	}
	// Convexify with a monotone-chain pass.
	var hull []*Model
	for _, m := range staircase {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			if cross(a, b, m) <= 0 {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, m)
	}
	return hull
}

func cross(a, b, c *Model) float64 {
	ax, ay := a.RefLatency, 1-a.Accuracy
	bx, by := b.RefLatency, 1-b.Accuracy
	cx, cy := c.RefLatency, 1-c.Accuracy
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}
