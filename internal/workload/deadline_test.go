package workload

import (
	"math"
	"testing"

	"github.com/alert-project/alert/internal/dnn"
)

// Edge cases of the goal-adjustment step: windows driven to zero or
// negative by overruns or oversized overhead reservations, and goals
// tighter than the tracker's floor, must all clamp to the 5 % floor
// instead of demanding the impossible.

func TestGoalFloorWhenOverheadExceedsDeadline(t *testing.T) {
	// Reserved overhead larger than the deadline would push every goal
	// negative; the tracker must clamp to the floor instead.
	d := NewDeadlineTracker(dnn.ImageClassification, 0.1, 0.5)
	got := d.GoalFor(Input{ID: 0})
	want := 0.1 * 0.05
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("goal %g, want floor %g", got, want)
	}
}

func TestGoalFloorOnExhaustedSentenceBudget(t *testing.T) {
	d := NewDeadlineTracker(dnn.SentencePrediction, 0.1, 0)
	mk := func(w int) Input { return Input{SentenceID: 7, WordIdx: w, SentenceLen: 3} }
	d.GoalFor(mk(0))
	d.Observe(mk(0), 5) // overruns the 0.3s sentence budget 16x over
	floor := 0.1 * 0.05
	for w := 1; w < 3; w++ {
		if got := d.GoalFor(mk(w)); math.Abs(got-floor) > 1e-12 {
			t.Errorf("word %d goal %g, want floor %g (budget is long gone)", w, got, floor)
		}
	}
}

func TestGoalNeverNegativeUnderCombinedPressure(t *testing.T) {
	// Overrun plus overhead: the two negative contributions must not
	// stack below the floor.
	d := NewDeadlineTracker(dnn.SentencePrediction, 0.2, 0.19)
	mk := func(w int) Input { return Input{SentenceID: 1, WordIdx: w, SentenceLen: 4} }
	d.GoalFor(mk(0))
	d.Observe(mk(0), 3)
	for w := 1; w < 4; w++ {
		got := d.GoalFor(mk(w))
		if got <= 0 {
			t.Fatalf("word %d goal %g must stay positive", w, got)
		}
		if got < 0.2*0.05-1e-12 {
			t.Fatalf("word %d goal %g below the floor", w, got)
		}
	}
}

func TestGoalTighterThanFloorIsLifted(t *testing.T) {
	// A sentence long enough that the evenly-spread share sits below the
	// floor: remaining budget / remaining words < 5 % of the deadline
	// after a near-total overrun.
	d := NewDeadlineTracker(dnn.SentencePrediction, 0.1, 0)
	mk := func(w int) Input { return Input{SentenceID: 2, WordIdx: w, SentenceLen: 10} }
	d.GoalFor(mk(0))
	// Budget is 1.0s; spend 0.97 of it on word 0 → per-word share 0.0033,
	// under the 0.005 floor.
	d.Observe(mk(0), 0.97)
	got := d.GoalFor(mk(1))
	if math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("goal %g, want floor 0.005", got)
	}
}

func TestZeroDeadlineYieldsZeroFloor(t *testing.T) {
	// A zero nominal deadline is degenerate: the floor collapses with it.
	// The tracker must not panic and must return a non-negative goal.
	d := NewDeadlineTracker(dnn.ImageClassification, 0, 0)
	if got := d.GoalFor(Input{ID: 0}); got != 0 {
		t.Fatalf("zero-deadline goal = %g, want 0", got)
	}
}

func TestSetPerInputRetargetsMidStream(t *testing.T) {
	d := NewDeadlineTracker(dnn.ImageClassification, 0.1, 0)
	if got := d.GoalFor(Input{ID: 0}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("initial goal %g", got)
	}
	d.SetPerInput(0.25)
	if got := d.PerInput(); got != 0.25 {
		t.Fatalf("PerInput %g after SetPerInput", got)
	}
	if got := d.GoalFor(Input{ID: 1}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("churned goal %g, want 0.25", got)
	}
}

func TestSetPerInputMidSentenceRecomputesBudget(t *testing.T) {
	d := NewDeadlineTracker(dnn.SentencePrediction, 0.1, 0)
	mk := func(w int) Input { return Input{SentenceID: 4, WordIdx: w, SentenceLen: 4} }
	d.GoalFor(mk(0))
	d.Observe(mk(0), 0.1)
	// Mid-sentence churn: the budget recomputes against the new goal
	// (0.2 × 4 = 0.8) while the 0.1s already spent stays booked.
	d.SetPerInput(0.2)
	want := (0.8 - 0.1) / 3
	if got := d.GoalFor(mk(1)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("churned sentence goal %g, want %g", got, want)
	}
}
