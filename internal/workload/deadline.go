package workload

import "github.com/alert-project/alert/internal/dnn"

// DeadlineTracker implements ALERT's goal-adjustment step (§3.2 step 2).
//
// Image and QA inputs each carry an independent deadline. Sentence
// prediction is different: "all the words in a sentence are processed by a
// DNN one by one and share one sentence-wise deadline and hence delays in
// previous input processing could greatly shorten the available time for
// the next input". The tracker books time spent per sentence and hands each
// word the remaining budget spread over the remaining words, so a slow word
// tightens — and a fast word relaxes — every subsequent word's goal.
type DeadlineTracker struct {
	task dnn.Task
	// perInput is the nominal per-input latency goal T_goal.
	perInput float64
	// overhead is the controller's worst-case own cost, subtracted from
	// every goal so ALERT itself never causes a violation (§3.2, §4).
	overhead float64

	curSentence int
	spent       float64
}

// NewDeadlineTracker builds a tracker for the task with the nominal
// per-input goal and the controller overhead to reserve.
func NewDeadlineTracker(task dnn.Task, perInput, overhead float64) *DeadlineTracker {
	return &DeadlineTracker{task: task, perInput: perInput, overhead: overhead, curSentence: -1}
}

// PerInput returns the nominal (unadjusted) per-input goal.
func (d *DeadlineTracker) PerInput() float64 { return d.perInput }

// SetPerInput retargets the nominal per-input goal mid-stream — scenario
// spec churn. The new goal takes effect from the next GoalFor; for sentence
// prediction the current sentence's remaining budget is recomputed against
// the new goal while the time already spent stays booked.
func (d *DeadlineTracker) SetPerInput(goal float64) { d.perInput = goal }

// GoalFor returns the adjusted latency goal for the given input.
func (d *DeadlineTracker) GoalFor(in Input) float64 {
	goal := d.perInput
	if d.task == dnn.SentencePrediction && in.SentenceLen > 0 {
		if in.SentenceID != d.curSentence {
			d.curSentence = in.SentenceID
			d.spent = 0
		}
		budget := d.perInput * float64(in.SentenceLen)
		remainingWords := float64(in.SentenceLen - in.WordIdx)
		goal = (budget - d.spent) / remainingWords
	}
	goal -= d.overhead
	// A fully exhausted budget still leaves the fastest configuration a
	// fighting chance rather than demanding the impossible.
	min := d.perInput * 0.05
	if goal < min {
		goal = min
	}
	return goal
}

// Observe books the measured latency of the input just processed.
func (d *DeadlineTracker) Observe(in Input, latency float64) {
	if d.task == dnn.SentencePrediction && in.SentenceID == d.curSentence {
		d.spent += latency
	}
}
