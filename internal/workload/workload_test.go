package workload

import (
	"math"
	"testing"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
)

func TestImageStreamBasics(t *testing.T) {
	s := NewImageStream(100, 1)
	if s.Task() != dnn.ImageClassification || s.Len() != 100 {
		t.Fatal("stream metadata wrong")
	}
	var stats mathx.OnlineStats
	count := 0
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if in.ID != count {
			t.Fatalf("IDs not sequential: %d at position %d", in.ID, count)
		}
		if in.SizeFactor <= 0 {
			t.Fatal("non-positive size factor")
		}
		stats.Add(in.SizeFactor)
		count++
	}
	if count != 100 {
		t.Fatalf("produced %d inputs", count)
	}
	if math.Abs(stats.Mean()-1) > 0.1 {
		t.Errorf("image size factors should center near 1, mean %g", stats.Mean())
	}
}

func TestImageStreamLowVarianceWithRareOutliers(t *testing.T) {
	s := NewImageStream(20000, 2)
	var outliers, n int
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if in.SizeFactor > 1.15 {
			outliers++
		}
		n++
	}
	rate := float64(outliers) / float64(n)
	if rate > 0.02 {
		t.Errorf("outlier rate %g too high; §2.2 says outliers are rare", rate)
	}
	if outliers == 0 {
		t.Error("expected some outliers to exist")
	}
}

func TestSentenceStreamStructure(t *testing.T) {
	s := NewSentenceStream(500, 3)
	if s.Task() != dnn.SentencePrediction {
		t.Fatal("wrong task")
	}
	if s.Len() < 500 {
		t.Fatalf("stream shorter than requested: %d", s.Len())
	}
	var lens []float64
	prevSentence := -1
	wordIdx := 0
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if in.SentenceID != prevSentence {
			if prevSentence >= 0 && wordIdx == 0 {
				t.Fatal("empty sentence")
			}
			prevSentence = in.SentenceID
			wordIdx = 0
			lens = append(lens, float64(in.SentenceLen))
		}
		if in.WordIdx != wordIdx {
			t.Fatalf("word index %d, want %d", in.WordIdx, wordIdx)
		}
		if in.SentenceLen < 3 || in.SentenceLen > 80 {
			t.Fatalf("sentence length %d outside [3, 80]", in.SentenceLen)
		}
		if in.LastWord() != (in.WordIdx == in.SentenceLen-1) {
			t.Fatal("LastWord inconsistent")
		}
		wordIdx++
	}
	if len(lens) < 5 {
		t.Fatalf("too few sentences: %d", len(lens))
	}
	mean := mathx.Mean(lens)
	if mean < 12 || mean < 0 || mean > 35 {
		t.Errorf("mean sentence length %g outside Penn-Treebank ballpark", mean)
	}
}

func TestSentenceStreamNeverTruncatesFinalSentence(t *testing.T) {
	s := NewSentenceStream(100, 4)
	var last Input
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		last = in
	}
	if !last.LastWord() {
		t.Error("stream ended mid-sentence")
	}
}

func TestQAStream(t *testing.T) {
	s := NewQAStream(50, 5)
	if s.Task() != dnn.QuestionAnswering || s.Len() != 50 {
		t.Fatal("metadata wrong")
	}
	n := 0
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if in.SizeFactor <= 0 {
			t.Fatal("bad size factor")
		}
		n++
	}
	if n != 50 {
		t.Fatalf("produced %d", n)
	}
}

func TestNewStreamDispatch(t *testing.T) {
	if NewStream(dnn.ImageClassification, 10, 1).Task() != dnn.ImageClassification {
		t.Error("image dispatch")
	}
	if NewStream(dnn.SentencePrediction, 10, 1).Task() != dnn.SentencePrediction {
		t.Error("sentence dispatch")
	}
	if NewStream(dnn.QuestionAnswering, 10, 1).Task() != dnn.QuestionAnswering {
		t.Error("QA dispatch")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(dnn.SentencePrediction, 200, 9)
	b := NewStream(dnn.SentencePrediction, 200, 9)
	for {
		x, okA := a.Next()
		y, okB := b.Next()
		if okA != okB {
			t.Fatal("lengths diverged")
		}
		if !okA {
			break
		}
		if x != y {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestDeadlineTrackerFixedTasks(t *testing.T) {
	d := NewDeadlineTracker(dnn.ImageClassification, 0.1, 0.002)
	in := Input{ID: 0, SizeFactor: 1}
	if got := d.GoalFor(in); math.Abs(got-0.098) > 1e-12 {
		t.Errorf("goal = %g, want deadline minus overhead", got)
	}
	// Image goals never depend on history.
	d.Observe(in, 0.5)
	if got := d.GoalFor(Input{ID: 1}); math.Abs(got-0.098) > 1e-12 {
		t.Errorf("image goal drifted to %g", got)
	}
}

func TestDeadlineTrackerSentenceSharing(t *testing.T) {
	d := NewDeadlineTracker(dnn.SentencePrediction, 0.1, 0)
	mk := func(word int) Input {
		return Input{SentenceID: 1, WordIdx: word, SentenceLen: 4}
	}
	// Word 0 gets the nominal per-word budget.
	if g := d.GoalFor(mk(0)); math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("word 0 goal %g", g)
	}
	// Word 0 was slow (0.2s): the remaining 0.2s budget is spread over 3
	// words.
	d.Observe(mk(0), 0.2)
	if g := d.GoalFor(mk(1)); math.Abs(g-0.2/3) > 1e-12 {
		t.Fatalf("word 1 goal %g, want %g", g, 0.2/3)
	}
	// Word 1 was fast (0.02s): word 2's goal relaxes.
	d.Observe(mk(1), 0.02)
	want := (0.4 - 0.22) / 2
	if g := d.GoalFor(mk(2)); math.Abs(g-want) > 1e-12 {
		t.Fatalf("word 2 goal %g, want %g", g, want)
	}
}

func TestDeadlineTrackerResetsPerSentence(t *testing.T) {
	d := NewDeadlineTracker(dnn.SentencePrediction, 0.1, 0)
	d.GoalFor(Input{SentenceID: 1, WordIdx: 0, SentenceLen: 2})
	d.Observe(Input{SentenceID: 1, WordIdx: 0, SentenceLen: 2}, 0.19)
	// New sentence: the old sentence's overrun must not leak in.
	if g := d.GoalFor(Input{SentenceID: 2, WordIdx: 0, SentenceLen: 5}); math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("new sentence goal %g", g)
	}
}

func TestDeadlineTrackerFloorsGoal(t *testing.T) {
	d := NewDeadlineTracker(dnn.SentencePrediction, 0.1, 0)
	in0 := Input{SentenceID: 3, WordIdx: 0, SentenceLen: 2}
	d.GoalFor(in0)
	d.Observe(in0, 10) // catastrophic overrun, budget exhausted
	g := d.GoalFor(Input{SentenceID: 3, WordIdx: 1, SentenceLen: 2})
	if g <= 0 {
		t.Fatalf("goal %g must stay positive", g)
	}
}
