// Package workload generates the input streams the evaluation feeds the
// runtime (Table 2): image streams whose per-input cost varies only
// slightly (with rare outliers), and sentence streams whose words are
// processed one at a time under a shared per-sentence deadline — the
// structure that makes NLP1 the high-variance task in Figure 4 and
// exercises ALERT's goal-adjustment step (§3.2 step 2).
//
// The package also owns that goal-adjustment step: DeadlineTracker turns
// the nominal per-input deadline into the adjusted goal each input must
// meet. Its contract:
//
//   - Image and QA inputs get an independent goal — the nominal deadline
//     minus the reserved controller overhead — that never depends on
//     history.
//   - Sentence-prediction words share one sentence-wise budget
//     (deadline × sentence length): each word's goal is the remaining
//     budget spread over the remaining words, so overruns tighten and
//     fast words relax every later word's goal; the booked time resets at
//     each sentence boundary.
//   - The goal is floored at 5 % of the nominal deadline: an exhausted
//     budget still asks for the fastest feasible configuration rather
//     than an impossible zero-or-negative window (tested in
//     deadline_test.go's edge cases).
//   - Streams are deterministic functions of (task, n, seed); the same
//     arguments always produce the identical input sequence, which is the
//     foundation of every cross-scheme and replay comparison.
package workload

import (
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
)

// Input is one unit of inference work. For image and QA tasks one Input is
// one image/question; for sentence prediction one Input is one word.
type Input struct {
	// ID is the zero-based position in the stream.
	ID int
	// SizeFactor multiplies the model's nominal latency for this input
	// (input-dependent cost: image decode size, sequence length, ...).
	SizeFactor float64

	// SentenceID groups words into sentences (sentence prediction only).
	SentenceID int
	// WordIdx is the word position within the sentence, zero-based.
	WordIdx int
	// SentenceLen is the total words in this sentence.
	SentenceLen int
}

// LastWord reports whether this input closes its sentence.
func (in Input) LastWord() bool { return in.WordIdx == in.SentenceLen-1 }

// Stream produces inputs until exhausted.
type Stream interface {
	// Next returns the next input; ok is false when the stream ends.
	Next() (in Input, ok bool)
	// Task identifies the inference task the inputs belong to.
	Task() dnn.Task
	// Len returns the total number of inputs the stream will produce.
	Len() int
}

// ImageStream models ImageNet-style inputs: lognormal jitter with sigma a
// couple of percent plus rare heavy outliers ("outlier inputs exist but are
// rare", §2.2).
type ImageStream struct {
	n    int
	i    int
	rng  *mathx.Rand
	task dnn.Task
}

// NewImageStream builds a deterministic stream of n image inputs.
func NewImageStream(n int, seed int64) *ImageStream {
	return &ImageStream{n: n, rng: mathx.NewRand(seed), task: dnn.ImageClassification}
}

// Next implements Stream.
func (s *ImageStream) Next() (Input, bool) {
	if s.i >= s.n {
		return Input{}, false
	}
	f := s.rng.LogNormal(0, 0.02)
	if s.rng.Bernoulli(0.004) { // rare outlier: odd resolution, decode stall
		f *= s.rng.Uniform(1.2, 1.8)
	}
	in := Input{ID: s.i, SizeFactor: f}
	s.i++
	return in, true
}

// Task implements Stream.
func (s *ImageStream) Task() dnn.Task { return s.task }

// Len implements Stream.
func (s *ImageStream) Len() int { return s.n }

// QAStream models SQuAD-style question answering: per-question cost varies
// with passage length, a moderate lognormal.
type QAStream struct {
	n   int
	i   int
	rng *mathx.Rand
}

// NewQAStream builds a deterministic stream of n questions.
func NewQAStream(n int, seed int64) *QAStream {
	return &QAStream{n: n, rng: mathx.NewRand(seed)}
}

// Next implements Stream.
func (s *QAStream) Next() (Input, bool) {
	if s.i >= s.n {
		return Input{}, false
	}
	in := Input{ID: s.i, SizeFactor: s.rng.LogNormal(0, 0.15)}
	s.i++
	return in, true
}

// Task implements Stream.
func (s *QAStream) Task() dnn.Task { return dnn.QuestionAnswering }

// Len implements Stream.
func (s *QAStream) Len() int { return s.n }

// SentenceStream models Penn Treebank-style text: sentences whose lengths
// follow a truncated lognormal (mean ≈ 21 words, range 3–80), emitted one
// word at a time. Word-level cost jitter is small; the dominant variance is
// sentence length, exactly the decomposition §2.2 reports for NLP1.
type SentenceStream struct {
	inputs []Input
	i      int
}

// NewSentenceStream builds a stream of whole sentences totalling at least n
// words (the final sentence is never truncated).
func NewSentenceStream(n int, seed int64) *SentenceStream {
	rng := mathx.NewRand(seed)
	var inputs []Input
	sid := 0
	for len(inputs) < n {
		slen := int(rng.LogNormal(2.9, 0.55)) + 3
		if slen > 80 {
			slen = 80
		}
		for w := 0; w < slen; w++ {
			inputs = append(inputs, Input{
				ID:          len(inputs),
				SizeFactor:  rng.LogNormal(0, 0.03),
				SentenceID:  sid,
				WordIdx:     w,
				SentenceLen: slen,
			})
		}
		sid++
	}
	return &SentenceStream{inputs: inputs}
}

// Next implements Stream.
func (s *SentenceStream) Next() (Input, bool) {
	if s.i >= len(s.inputs) {
		return Input{}, false
	}
	in := s.inputs[s.i]
	s.i++
	return in, true
}

// Task implements Stream.
func (s *SentenceStream) Task() dnn.Task { return dnn.SentencePrediction }

// Len implements Stream.
func (s *SentenceStream) Len() int { return len(s.inputs) }

// NewStream builds the canonical evaluation stream for a task.
func NewStream(task dnn.Task, n int, seed int64) Stream {
	switch task {
	case dnn.SentencePrediction:
		return NewSentenceStream(n, seed)
	case dnn.QuestionAnswering:
		return NewQAStream(n, seed)
	default:
		return NewImageStream(n, seed)
	}
}
