package sim

import (
	"math"
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/workload"
)

func newTestEnv(t *testing.T, cont contention.Source) *Env {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(prof, cont, 42)
}

func TestStepLatencyScalesWithXi(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	xi := env.PeekXi(in)
	out := env.Step(Decision{Model: 0, Cap: env.Prof.NumCaps() - 1}, in, 10, 10)
	want := env.Prof.At(0, env.Prof.NumCaps()-1) * xi
	if math.Abs(out.Latency-want) > 1e-12 {
		t.Errorf("latency %g, want tprof*xi = %g", out.Latency, want)
	}
	if out.TrueXi != xi || out.ObservedXi != xi {
		t.Error("xi bookkeeping mismatch")
	}
}

func TestPeekDoesNotAdvance(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	a := env.PeekXi(in)
	b := env.PeekXi(in)
	if a != b {
		t.Fatal("PeekXi not idempotent")
	}
	if env.InputCount() != 0 || env.Now() != 0 {
		t.Fatal("PeekXi advanced the environment")
	}
	out := env.Step(Decision{Model: 0, Cap: 0}, in, 10, 10)
	if out.TrueXi != a {
		t.Fatal("Step consumed a different draw than PeekXi exposed")
	}
}

func TestEvaluateAtMatchesStep(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1.07}
	d := Decision{Model: 2, Cap: 3}
	eval := env.EvaluateAt(d, in, 0.1, 0.1)
	step := env.Step(d, in, 0.1, 0.1)
	if eval != step {
		t.Fatalf("EvaluateAt %+v != Step %+v", eval, step)
	}
}

func TestTraditionalDeadlineMissYieldsQFail(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	m := env.Prof.ModelIndex("SparseResNet-XL")
	// Impossible goal: even the top cap cannot finish in 1 ms.
	out := env.Step(Decision{Model: m, Cap: env.Prof.NumCaps() - 1}, in, 0.001, 0.001)
	if out.DeadlineMet {
		t.Fatal("deadline cannot have been met")
	}
	if out.Quality != env.Prof.Models[m].QFail {
		t.Errorf("quality = %g, want QFail", out.Quality)
	}
	// The traditional model runs to completion: latency is the full time,
	// not the goal.
	if out.Latency <= 0.001 {
		t.Error("traditional model should run past the missed deadline")
	}
}

func TestAnytimeCutAtGoal(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	nest := env.Prof.ModelIndex("DepthNest")
	top := env.Prof.NumCaps() - 1
	full := env.Prof.At(nest, top)
	goal := full * 0.5 // only ~half the ladder can run
	out := env.Step(Decision{Model: nest, Cap: top}, in, goal, goal)
	if out.Latency > goal {
		t.Fatalf("anytime model ran past its cut: %g > %g", out.Latency, goal)
	}
	m := env.Prof.Models[nest]
	if out.Quality >= m.Accuracy {
		t.Error("cut ladder should not deliver final accuracy")
	}
	if out.Quality < m.Stages[0].Accuracy {
		t.Error("half the ladder should deliver at least stage 0")
	}
	if out.Stage < 0 {
		t.Error("some stage must have completed")
	}
}

func TestAnytimePlannedStopBindsBeforeGoal(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	nest := env.Prof.ModelIndex("DepthNest")
	top := env.Prof.NumCaps() - 1
	full := env.Prof.At(nest, top)
	stop := full * 0.3
	out := env.Step(Decision{Model: nest, Cap: top, PlannedStop: stop}, in, full*4, full*4)
	if out.Latency > stop+1e-9 {
		t.Fatalf("planned stop ignored: latency %g > stop %g", out.Latency, stop)
	}
}

func TestEnergyAccounting(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	d := Decision{Model: 0, Cap: 2}
	period := 1.0
	out := env.Step(d, in, period, period)
	plat := env.Plat
	m := env.Prof.Models[0]
	wantInfer := plat.InferencePower(env.Prof.Caps[2]) * m.UtilFactor * out.Latency
	if math.Abs(out.InferEnergy-wantInfer) > 1e-9 {
		t.Errorf("infer energy %g, want %g", out.InferEnergy, wantInfer)
	}
	wantIdle := plat.IdlePower * (period - out.Latency)
	if math.Abs(out.IdleEnergy-wantIdle) > 1e-9 {
		t.Errorf("idle energy %g, want %g", out.IdleEnergy, wantIdle)
	}
	if math.Abs(out.Energy-(out.InferEnergy+out.IdleEnergy)) > 1e-12 {
		t.Error("total energy != parts")
	}
}

func TestOverheadCharged(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	base := env.EvaluateAt(Decision{Model: 0, Cap: 0}, in, 10, 10)
	withOh := env.EvaluateAt(Decision{Model: 0, Cap: 0, Overhead: 0.005}, in, 10, 10)
	if math.Abs(withOh.Latency-base.Latency-0.005) > 1e-12 {
		t.Error("overhead not charged to latency")
	}
	if withOh.InferEnergy <= base.InferEnergy {
		t.Error("overhead not charged to energy")
	}
}

func TestContentionRaisesIdlePower(t *testing.T) {
	// Force a contended draw by using a scripted burst covering input 0.
	cont := contention.NewScripted(platform.CPU, 5, contention.Burst{Start: 0, End: 10, Scenario: contention.Memory})
	env := newTestEnv(t, cont)
	in := workload.Input{ID: 0, SizeFactor: 1}
	out := env.Step(Decision{Model: 0, Cap: 0}, in, 1, 1)
	if out.IdlePower <= env.Plat.IdlePower {
		t.Errorf("co-runner draw missing from idle power: %g", out.IdlePower)
	}
	if !out.ContentionActive {
		t.Error("contention flag not set")
	}
}

func TestClockAdvancesByWindow(t *testing.T) {
	env := newTestEnv(t, contention.Steady{})
	in := workload.Input{ID: 0, SizeFactor: 1}
	env.Step(Decision{Model: 0, Cap: 0}, in, 0.5, 0.5)
	if math.Abs(env.Now()-0.5) > 1e-12 {
		t.Errorf("clock %g, want period 0.5", env.Now())
	}
	// A run overshooting the period stretches the window.
	in2 := workload.Input{ID: 1, SizeFactor: 1}
	out := env.Step(Decision{Model: env.Prof.ModelIndex("SparseResNet-XL"), Cap: 0}, in2, 0.0001, 0.0001)
	if env.Now() < 0.5+out.Latency-1e-9 {
		t.Error("clock did not stretch for an overrun")
	}
}

func TestDeterministicReplayAcrossDecisions(t *testing.T) {
	// The environment draws must not depend on the decisions taken — the
	// property OracleStatic's exhaustive replay relies on.
	mkEnv := func() *Env {
		prof, _ := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
		return NewEnv(prof, contention.NewSource(contention.Memory, platform.CPU, 9), 42)
	}
	a, b := mkEnv(), mkEnv()
	for i := 0; i < 200; i++ {
		in := workload.Input{ID: i, SizeFactor: 1}
		oa := a.Step(Decision{Model: 0, Cap: 0}, in, 1, 1)
		ob := b.Step(Decision{Model: 4, Cap: 10}, in, 1, 1)
		if oa.TrueXi != ob.TrueXi {
			t.Fatalf("input %d: draws diverged across decisions", i)
		}
	}
}
