// Package sim is the execution substrate: a virtual-time simulator that
// plays the role the physical testbed plays in the paper. Given a chosen
// DNN, a power cap, the next input, and the ambient contention, it produces
// the measured latency, energy, and achieved quality that feed ALERT's
// feedback loop.
//
// The central modelling decision is that all stochastic effects compose
// into a single per-input multiplier on the profiled latency:
//
//	ξ_true(n) = contention slowdown × input size factor × platform noise
//
// which is exactly the global-slowdown-factor structure ALERT's estimator
// assumes (§3.3, Idea 1). The paper argues this assumption holds for DNNs
// because of code-path similarity and structural proportionality across a
// model family; the simulator makes it hold by construction, and the
// calibrated noise processes (platform jitter, contention bursts, input
// size) reproduce the latency distributions of Figures 4, 5 and 11.
// Because the multiplier is configuration-independent per input, the Oracle
// baseline can evaluate every configuration an input *would* have
// experienced — the same exhaustive-measurement construction §2.3 uses.
//
// The disturbance source is the contention.Source interface: the stock
// Markov/Scripted co-runner models, or a compiled internal/scenario trace
// (phase-switching contention, thermal/power-cap throttling, spec churn)
// replayed through the same interface. The one exception to per-input
// configuration independence is environment-enforced power throttling
// (Effect.CapLimitW): clamping the applied cap slows only the
// configurations above the limit, so for those the realized ξ includes the
// throttle penalty.
package sim

import (
	"math"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/workload"
)

// Env is one simulated deployment: a platform, a profiled candidate set,
// and a contention environment, advancing a virtual clock input by input.
type Env struct {
	Plat *platform.Platform
	Prof *dnn.ProfileTable
	Cont contention.Source

	rng *mathx.Rand
	now float64

	// pending is the contention effect drawn for the upcoming input; it is
	// drawn lazily and cached so PeekXi and Step agree.
	pending    *contention.Effect
	pendingIn  *pendingDraw
	inputCount int
}

type pendingDraw struct {
	id        int
	baseNoise float64
}

// NewEnv builds a simulation environment. The seed controls platform noise
// only; the contention source carries its own generator.
func NewEnv(prof *dnn.ProfileTable, cont contention.Source, seed int64) *Env {
	return &Env{Plat: prof.Platform, Prof: prof, Cont: cont, rng: mathx.NewRand(seed)}
}

// Now returns the virtual clock in seconds.
func (e *Env) Now() float64 { return e.now }

// InputCount returns how many inputs have been executed.
func (e *Env) InputCount() int { return e.inputCount }

// Decision is what a scheduler chose for one input.
type Decision struct {
	// Model and Cap index into the environment's profile table.
	Model, Cap int
	// PlannedStop, if positive, cuts an anytime model's execution at this
	// many seconds even if later stages are still pending — ALERT's
	// energy-driven early stop (§3.5). Ignored for traditional models.
	PlannedStop float64
	// Overhead is the scheduler's own decision+switching cost in seconds,
	// charged to the measured latency and energy (§4 reports 0.6–1.7 %).
	Overhead float64
}

// Outcome is everything the testbed measures for one input.
type Outcome struct {
	// TrueXi is the realized global slowdown multiplier for this input —
	// ground truth the Oracle sees and the estimator only infers.
	TrueXi float64
	// ObservedXi is the slowdown the runtime can compute from its own
	// measurement (latency of the executed work over its profiled time).
	// It equals TrueXi because work scales uniformly.
	ObservedXi float64
	// Latency is the measured wall-clock inference time, including
	// scheduler overhead.
	Latency float64
	// DeadlineMet reports Latency <= the goal passed to Step.
	DeadlineMet bool
	// Quality is the achieved task quality for this input (Eq. 3/13).
	Quality float64
	// Stage is the last anytime stage completed (-1 for none/traditional).
	Stage int
	// InferEnergy is joules consumed while inferring.
	InferEnergy float64
	// IdleEnergy is joules consumed waiting for the next input.
	IdleEnergy float64
	// Energy is the total over the input period window.
	Energy float64
	// IdlePower is the measured system draw during the idle window — what
	// feeds the Eq. 8 filter (platform idle + co-runner draw).
	IdlePower float64
	// CapApplied is the wattage that was enforced.
	CapApplied float64
	// ContentionActive mirrors the contention source's state for traces.
	ContentionActive bool
}

// draw fixes the stochastic multipliers for the next input if not yet done.
func (e *Env) draw(in workload.Input) (contention.Effect, float64) {
	if e.pendingIn == nil || e.pendingIn.id != in.ID {
		eff := e.Cont.Next()
		e.pending = &eff
		e.pendingIn = &pendingDraw{
			id:        in.ID,
			baseNoise: e.rng.LogNormal(0, e.Plat.BaselineNoise),
		}
	}
	return *e.pending, e.pendingIn.baseNoise
}

// PeekXi returns the true slowdown multiplier the upcoming input will
// experience. Only oracle schedulers call this; feedback schedulers never
// see it. Peeking does not advance the environment.
func (e *Env) PeekXi(in workload.Input) float64 {
	eff, noise := e.draw(in)
	return eff.Slowdown * in.SizeFactor * noise
}

// NominalLatency returns t_prof for a configuration, the quantity ALERT
// multiplies by its ξ estimate.
func (e *Env) NominalLatency(model, cap int) float64 { return e.Prof.At(model, cap) }

// EvaluateAt computes the outcome the upcoming input would experience under
// a decision, without consuming the input or advancing the clock. This is
// the Oracle's primitive: the paper's oracles are built "by running 90
// inputs in all possible DNN and system configurations" (§2.3); here the
// exhaustive measurement is a pure function of the input's already-drawn
// slowdown. Feedback schedulers must never call it.
func (e *Env) EvaluateAt(d Decision, in workload.Input, goal, period float64) Outcome {
	eff, noise := e.draw(in)
	return e.outcome(d, in, goal, period, eff, noise)
}

// Step executes one input under the given decision. goal is the (possibly
// adjusted) latency goal; period is the input arrival period that bounds
// the energy accounting window (the paper's periodic-sensor setting uses
// period == goal). Step advances the virtual clock by max(period, latency).
func (e *Env) Step(d Decision, in workload.Input, goal, period float64) Outcome {
	eff, noise := e.draw(in)
	e.pending, e.pendingIn = nil, nil
	e.inputCount++
	out := e.outcome(d, in, goal, period, eff, noise)
	e.now += math.Max(period, out.Latency)
	return out
}

// outcome is the pure measurement model shared by Step and EvaluateAt.
func (e *Env) outcome(d Decision, in workload.Input, goal, period float64, eff contention.Effect, noise float64) Outcome {
	m := e.Prof.Models[d.Model]
	xi := eff.Slowdown * in.SizeFactor * noise

	// Environment-enforced power throttling (scenario traces): the applied
	// cap is clamped to the highest ladder rung within the current limit,
	// so the work executes at the clamped rung's speed and power. From the
	// runtime's viewpoint the extra slowdown is indistinguishable from any
	// other environmental disturbance, so it folds into ξ — for throttled
	// configurations TrueXi/ObservedXi carry the (configuration-dependent)
	// throttle penalty on top of the global multiplier.
	capIdx := d.Cap
	if eff.CapLimitW > 0 {
		for capIdx > 0 && e.Prof.Caps[capIdx] > eff.CapLimitW {
			capIdx--
		}
	}
	cap := e.Prof.Caps[capIdx]
	if capIdx != d.Cap {
		xi *= e.Prof.At(d.Model, capIdx) / e.Prof.At(d.Model, d.Cap)
	}

	tProf := e.Prof.At(d.Model, d.Cap)
	tFull := tProf * xi

	// Execution duration: traditional models run to completion (the late
	// result is worthless but the measurement is real); anytime models are
	// cut at their planned stop or the goal, whichever the runtime set.
	executed := tFull
	stage := -1
	quality := m.Accuracy
	if m.IsAnytime() {
		cut := goal
		if d.PlannedStop > 0 && d.PlannedStop < cut {
			cut = d.PlannedStop
		}
		if tFull > cut {
			executed = cut
		}
		frac := executed / tFull
		quality = m.QualityAt(frac)
		for si, s := range m.Stages {
			if frac >= s.LatencyFrac {
				stage = si
			}
		}
	}

	latency := executed + d.Overhead
	met := latency <= goal
	if !m.IsAnytime() && !met {
		quality = m.QFail
	}
	if m.IsAnytime() && stage < 0 {
		quality = m.QFail
	}

	inferPower := e.Plat.InferencePower(cap) * m.UtilFactor
	inferEnergy := inferPower * latency

	window := math.Max(period, latency)
	idleTime := window - latency
	idlePower := e.Plat.IdlePower + eff.ExtraPower
	idleEnergy := idlePower * idleTime

	return Outcome{
		TrueXi:           xi,
		ObservedXi:       xi,
		Latency:          latency,
		DeadlineMet:      met,
		Quality:          quality,
		Stage:            stage,
		InferEnergy:      inferEnergy,
		IdleEnergy:       idleEnergy,
		Energy:           inferEnergy + idleEnergy,
		IdlePower:        idlePower,
		CapApplied:       cap,
		ContentionActive: eff.Active,
	}
}
