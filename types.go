package alert

import (
	"fmt"
	"strings"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
)

// Model describes one inference-model candidate: its profiled reference
// latency, accuracy, memory footprint, and (for anytime networks) the
// output-stage ladder. See the internal/dnn documentation for field
// details.
type Model = dnn.Model

// Stage is one output rung of an anytime model.
type Stage = dnn.Stage

// Task identifies the inference task of a candidate set.
type Task = dnn.Task

// Task values (Table 2 of the paper).
const (
	ImageClassification = dnn.ImageClassification
	SentencePrediction  = dnn.SentencePrediction
	QuestionAnswering   = dnn.QuestionAnswering
)

// Platform describes a machine and its power-management knobs.
type Platform = platform.Platform

// The four platforms of the paper's Table 1.
var (
	Embedded = platform.Embedded
	CPU1     = platform.CPU1
	CPU2     = platform.CPU2
	GPU      = platform.GPUPlatform
)

// Platforms returns all four Table 1 platforms.
func Platforms() []*Platform { return platform.All() }

// PlatformByName returns the Table 1 platform with the given name,
// case-insensitively — the lookup every CLI flag uses.
func PlatformByName(name string) (*Platform, error) {
	for _, p := range platform.All() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("alert: unknown platform %q", name)
}

// Spec is the per-input requirement: a deadline plus either an energy
// budget (MaximizeAccuracy) or an accuracy goal (MinimizeEnergy), and an
// optional probabilistic threshold.
type Spec = core.Spec

// Objective selects the optimization dimension.
type Objective = core.Objective

// Objective values (§3.1, Eq. 1 and Eq. 2).
const (
	MaximizeAccuracy = core.MaximizeAccuracy
	MinimizeEnergy   = core.MinimizeEnergy
)

// Estimate is the scheduler's prediction for a candidate configuration.
type Estimate = core.Estimate

// Contention names a simulated co-location environment.
type Contention = contention.Scenario

// Contention values (Table 3's run-time environments).
const (
	NoContention      = contention.Default
	ComputeContention = contention.Compute
	MemoryContention  = contention.Memory
)

// Burst is a scripted contention window over input indices, for
// reproducible dynamic-behaviour studies like the paper's Figure 9.
type Burst = contention.Burst

// Candidate sets used in the paper's evaluation (Table 3).
var (
	// ImageCandidates is the Sparse ResNet ladder plus the Depth-Nest
	// anytime classifier.
	ImageCandidates = dnn.ImageCandidates
	// SentenceCandidates is the word-RNN width ladder plus the Width-Nest
	// anytime network.
	SentenceCandidates = dnn.SentenceCandidates
	// ImageNetZoo generates the 42-model tradeoff population of Figure 2.
	ImageNetZoo = dnn.ImageNetZoo
)

// PerplexityFromQuality converts a sentence-prediction quality score to
// Penn Treebank-scale perplexity, the metric Figure 10 reports.
var PerplexityFromQuality = dnn.PerplexityFromQuality

// outcomeForFeedback translates a public Feedback into the controller's
// observation type.
func outcomeForFeedback(fb Feedback, nominal float64) sim.Outcome {
	out := sim.Outcome{ObservedXi: fb.Latency / nominal}
	// The controller only folds in an idle-power observation when a cap is
	// attached; reporting no idle measurement must leave φ untouched.
	if fb.IdlePowerW > 0 {
		out.IdlePower = fb.IdlePowerW
		out.CapApplied = fb.Decision.CapW
	}
	return out
}
