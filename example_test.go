package alert_test

import (
	"fmt"

	"github.com/alert-project/alert"
)

// ExampleScheduler is the README quickstart: one scheduler serving one
// inference stream, deciding a model + power cap per input and learning
// from each measurement. Latencies here are synthetic — the environment is
// a steady 1.3× slower than the profiling run — so the example is
// deterministic; in a real deployment they come from the clock around the
// inference call. The traditional (non-anytime) candidates keep the
// synthetic executor trivial; anytime early-stopping is exercised
// end-to-end by ExampleSimulate's substrate.
func ExampleScheduler() {
	var models []*alert.Model
	for _, m := range alert.ImageCandidates() {
		if !m.IsAnytime() {
			models = append(models, m)
		}
	}
	sched, err := alert.NewScheduler(alert.CPU1(), models, alert.Options{})
	if err != nil {
		panic(err)
	}
	spec := alert.Spec{
		Objective:    alert.MinimizeEnergy,
		Deadline:     0.1, // seconds
		AccuracyGoal: 0.93,
	}
	for i := 0; i < 50; i++ {
		d, est := sched.Decide(spec)
		// The real system would run models[d.Model] under caps[d.Cap] and
		// time the inference; here the measurement is the candidate's
		// profiled latency (the estimate's mean over the current slowdown
		// belief) scaled by the true 1.3× slowdown.
		mu, _ := sched.XiEstimate()
		measured := 1.3 * est.LatMean / mu
		sched.Observe(alert.Feedback{Decision: d, Latency: measured, CompletedStage: -1})
	}
	mu, _ := sched.XiEstimate()
	fmt.Printf("slowdown estimate after 50 inputs: %.2f\n", mu)
	// Output: slowdown estimate after 50 inputs: 1.30
}

// ExampleServer serves multiple concurrent inference streams through the
// sharded pool: per-stream behaviour is identical to a dedicated
// Scheduler, and the counters aggregate across streams.
func ExampleServer() {
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 2})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.1, AccuracyGoal: 0.93}
	for i := 0; i < 10; i++ {
		for stream := 0; stream < 2; stream++ {
			d, _ := srv.Decide(stream, spec)
			srv.Observe(stream, alert.Feedback{Decision: d, Latency: 0.025, CompletedStage: -1})
		}
	}
	stats := srv.Stats()
	fmt.Printf("shards=%d decisions=%d\n", srv.Shards(), stats.Decisions)
	// Output: shards=2 decisions=20
}

// ExampleSimulate exercises the scheduler end-to-end on the simulation
// substrate — no GPUs, RAPL access, or trained networks required.
func ExampleSimulate() {
	rep, err := alert.Simulate(alert.SimConfig{
		Spec: alert.Spec{
			Objective:    alert.MinimizeEnergy,
			Deadline:     0.12,
			AccuracyGoal: 0.90,
		},
		Contention: alert.MemoryContention,
		Inputs:     200,
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("inputs=%d violations=%.1f%% misses=%.1f%%\n",
		rep.Inputs, 100*rep.ViolationRate, 100*rep.DeadlineMissRate)
	// Output: inputs=200 violations=0.0% misses=0.0%
}
