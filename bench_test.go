package alert

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact) and reports the headline shape
// metrics via b.ReportMetric, so `go test -bench=. -benchmem` doubles as a
// reproduction run. Benchmarks use the reduced grid; `cmd/experiments`
// regenerates the full-scale numbers recorded in EXPERIMENTS.md.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/experiment"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/scenario"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// runnerConfig builds a large-stream runner config for micro-benchmarks.
func runnerConfig(prof *dnn.ProfileTable, spec core.Spec) runner.Config {
	return runner.Config{
		Prof:      prof,
		Scenario:  contention.Memory,
		Spec:      spec,
		NumInputs: 1 << 20,
		Seed:      1,
	}
}

func benchScale() experiment.Scale {
	sc := experiment.QuickScale()
	sc.Inputs = 100
	return sc
}

// BenchmarkFig2TradeoffZoo regenerates the 42-network tradeoff study.
func BenchmarkFig2TradeoffZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LatencySpan, "latSpanX")
		b.ReportMetric(res.ErrorSpan, "errSpanX")
		b.ReportMetric(res.EnergySpan, "energySpanX")
	}
}

// BenchmarkFig3PowerSweep regenerates the ResNet50 power sweep.
func BenchmarkFig3PowerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxEnergyCap, "peakW")
		b.ReportMetric(res.MaxOverMin, "peakOverMin")
		b.ReportMetric(res.SpeedRatio, "speed100/40")
	}
}

// BenchmarkFig4Variance regenerates the contention-free latency variance
// study.
func BenchmarkFig4Variance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigVariance(false, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Contention regenerates the co-located latency variance study.
func BenchmarkFig5Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigVariance(true, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6SingleLayer regenerates the single-layer-vs-combined oracle
// study.
func BenchmarkFig6SingleLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AppOverCombined, "appOverCombined")
		b.ReportMetric(res.SysInfeasibleBelow, "sysFeasibleFromS")
	}
}

// benchCell runs one Table 4 cell and reports ALERT's normalized value.
func benchCell(b *testing.B, obj core.Objective) {
	key := experiment.CellKey{
		Platform: "CPU1",
		Task:     dnn.ImageClassification,
		Scenario: contention.Memory,
	}
	for i := 0; i < b.N; i++ {
		cell, err := experiment.RunCell(key, obj, benchScale(), experiment.CellOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.Norm[experiment.SchemeALERT].NormValue, "ALERTnorm")
		b.ReportMetric(cell.Norm[experiment.SchemeOracle].NormValue, "Oraclenorm")
		b.ReportMetric(cell.Norm[experiment.SchemeAppOnly].NormValue, "AppOnlynorm")
	}
}

// BenchmarkTable4MinimizeEnergy regenerates one representative cell of
// Table 4's left half (CPU1, Sparse ResNet, Memory).
func BenchmarkTable4MinimizeEnergy(b *testing.B) {
	benchCell(b, core.MinimizeEnergy)
}

// BenchmarkTable4MinimizeError regenerates one representative cell of
// Table 4's right half.
func BenchmarkTable4MinimizeError(b *testing.B) {
	benchCell(b, core.MaximizeAccuracy)
}

// BenchmarkFig7Summary regenerates Figure 7's cross-scheme summary over a
// reduced Table 4 (GPU rows only, to bound the runtime).
func BenchmarkFig7Summary(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		cell, err := experiment.RunCell(experiment.CellKey{
			Platform: "GPU", Task: dnn.ImageClassification, Scenario: contention.Compute,
		}, core.MinimizeEnergy, sc, experiment.CellOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.Norm[experiment.SchemeALERT].NormValue, "ALERTnormGPU")
	}
}

// BenchmarkTable5CandidateSets regenerates one Table 5 row.
func BenchmarkTable5CandidateSets(b *testing.B) {
	key := experiment.CellKey{
		Platform: "CPU2",
		Task:     dnn.ImageClassification,
		Scenario: contention.Memory,
	}
	for i := 0; i < b.N; i++ {
		cell, err := experiment.RunCell(key, core.MinimizeEnergy, benchScale(),
			experiment.CellOptions{Schemes: experiment.Table5Schemes})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell.Norm[experiment.SchemeALERT].NormValue, "ALERT")
		b.ReportMetric(cell.Norm[experiment.SchemeALERTAny].NormValue, "ALERTAny")
		b.ReportMetric(cell.Norm[experiment.SchemeALERTTrad].NormValue, "ALERTTrad")
	}
}

// BenchmarkFig8Whiskers regenerates the ALERT/Oracle/OracleStatic whisker
// comparison for one (platform, task) subplot.
func BenchmarkFig8Whiskers(b *testing.B) {
	sc := benchScale()
	schemes := []string{experiment.SchemeALERT, experiment.SchemeOracle}
	key := experiment.CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Compute}
	for i := 0; i < b.N; i++ {
		cell, err := experiment.RunCell(key, core.MinimizeEnergy, sc,
			experiment.CellOptions{Schemes: schemes})
		if err != nil {
			b.Fatal(err)
		}
		_ = cell
	}
}

// BenchmarkFig9DynamicTrace regenerates the burst-reaction trace.
func BenchmarkFig9DynamicTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		alert := res.Traces[0]
		b.ReportMetric(alert.MeanQuality(res.BurstStart, res.BurstEnd), "burstQuality")
		b.ReportMetric(alert.AnytimeShare(res.BurstStart, res.BurstEnd), "anytimeShare")
	}
}

// BenchmarkFig10Probabilistic regenerates the ALERT-vs-ALERT* perplexity
// comparison under memory contention.
func BenchmarkFig10Probabilistic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig10(contention.Memory, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		std := res.Groups[0]
		b.ReportMetric(std.Alert.Mean, "ALERTppl")
		b.ReportMetric(std.AlertStar.Mean, "ALERTstarppl")
	}
}

// BenchmarkFig11XiDistribution regenerates the slowdown-factor histograms.
func BenchmarkFig11XiDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Histograms[2].MuHat, "memoryMuHat")
	}
}

// BenchmarkControllerDecision measures the per-input scheduling cost — §4
// reports 0.6-1.7% of an inference; at ~100ms inferences that allows up to
// ~1ms, and this decision loop runs in microseconds.
func BenchmarkControllerDecision(b *testing.B) {
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		b.Fatal(err)
	}
	ctl := core.New(prof, core.DefaultOptions())
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := ctl.Decide(spec)
		ctl.Observe(sim.Outcome{ObservedXi: 1.1, IdlePower: 6, CapApplied: prof.Caps[d.Cap]})
	}
}

// BenchmarkControllerDecisionZoo measures decision cost over the 42-model
// zoo — the large-configuration-space case the global slowdown factor is
// designed for.
func BenchmarkControllerDecisionZoo(b *testing.B) {
	prof, err := dnn.Profile(platform.CPU2(), dnn.ImageNetZoo(1))
	if err != nil {
		b.Fatal(err)
	}
	ctl := core.New(prof, core.DefaultOptions())
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := ctl.Decide(spec)
		ctl.Observe(sim.Outcome{ObservedXi: 1.05, IdlePower: 20, CapApplied: prof.Caps[d.Cap]})
	}
}

// BenchmarkServeThroughput measures the concurrent serving layer's
// decisions/sec at 1 shard (the serial baseline) and at one shard per core.
// Shards never contend on anything but atomic counters, so on a multi-core
// runner the per-core variant should deliver ≥ 2× the single-shard rate;
// the decisions/sec metric makes the ratio directly readable from the
// output.
func BenchmarkServeThroughput(b *testing.B) {
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	bench := func(b *testing.B, shards int) {
		srv, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{Shards: shards, QueueDepth: 256})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		var stream atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Each benchmark goroutine is one inference stream, pinned to
			// a shard, running the paper's decide → observe loop.
			s := int(stream.Add(1))
			for pb.Next() {
				d, _ := srv.Decide(s, spec)
				srv.Observe(s, Feedback{Decision: d, Latency: 1.05 * srv.prof.At(d.Model, d.Cap), CompletedStage: -1})
			}
		})
		b.StopTimer()
		// Rate over the timed region only; the counters' own uptime also
		// includes profiling/setup, which would flatten the shard ratio at
		// small b.N.
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "decisions/s")
		}
	}
	b.Run("shards=1", func(b *testing.B) { bench(b, 1) })
	b.Run(fmt.Sprintf("shards=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		bench(b, runtime.GOMAXPROCS(0))
	})
}

// BenchmarkServerUnderScenario measures the serving layer beyond steady
// state: multi-stream decide → observe traffic whose disturbances replay a
// compiled environment scenario (phase-switching contention, thermal
// throttling ramps, bursty arrival shaping). Reported deadline-miss rate
// and decisions/sec capture how throughput and SLO behaviour move when the
// environment does — the trajectory steady-state benchmarks cannot see.
func BenchmarkServerUnderScenario(b *testing.B) {
	const (
		streams = 4
		inputs  = 150
	)
	plat := CPU1()
	prof, err := dnn.Profile(plat, ImageCandidates())
	if err != nil {
		b.Fatal(err)
	}
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	for _, name := range []string{"phased", "thermal", "bursty"} {
		b.Run(name, func(b *testing.B) {
			sspec, err := scenario.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := scenario.Compile(sspec, plat, inputs, spec.Deadline, 42)
			if err != nil {
				b.Fatal(err)
			}
			var misses, total atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv, err := NewServer(plat, ImageCandidates(), ServerOptions{Shards: streams})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for s := 0; s < streams; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						env := sim.NewEnv(prof, tr.Source(), int64(1000+s))
						stream := workload.NewImageStream(inputs, int64(s)*13+1)
						cur := spec
						for {
							in, ok := stream.Next()
							if !ok {
								break
							}
							if next := tr.SpecFor(in.ID, spec); next != cur {
								cur = next
							}
							d, _ := srv.Decide(s, cur)
							out := env.Step(sim.Decision{
								Model:       d.Model,
								Cap:         d.Cap,
								PlannedStop: d.PlannedStop,
								Overhead:    d.Overhead,
							}, in, cur.Deadline, cur.Deadline)
							srv.Observe(s, Feedback{
								Decision:       d,
								Latency:        out.Latency,
								CompletedStage: out.Stage,
								IdlePowerW:     out.IdlePower,
							})
							total.Add(1)
							if !out.DeadlineMet {
								misses.Add(1)
							}
						}
					}(s)
				}
				wg.Wait()
				b.StopTimer()
				srv.Close()
				b.StartTimer()
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(total.Load())/sec, "decisions/s")
			}
			if n := total.Load(); n > 0 {
				b.ReportMetric(float64(misses.Load())/float64(n), "missRate")
			}
		})
	}
}

// BenchmarkServeBatch measures batched dispatch through the public API.
func BenchmarkServeBatch(b *testing.B) {
	srv, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	reqs := make([]BatchRequest, 64)
	for i := range reqs {
		reqs[i] = BatchRequest{Stream: i, Spec: spec}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.DecideBatch(reqs)
	}
}

// BenchmarkKalmanObserve measures the estimator update alone.
func BenchmarkKalmanObserve(b *testing.B) {
	prof, _ := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	ctl := core.New(prof, core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Observe(sim.Outcome{ObservedXi: 1.0 + float64(i%7)*0.01, IdlePower: 6, CapApplied: 30})
	}
}

// BenchmarkOracleDecision measures the clairvoyant baseline's per-input
// exhaustive search, for comparison with ALERT's.
func BenchmarkOracleDecision(b *testing.B) {
	prof, _ := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	cfg := runnerConfig(prof, spec)
	env := cfg.NewEnv()
	oracle := baselines.NewOracle(spec)
	stream := cfg.NewStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, ok := stream.Next()
		if !ok {
			b.StopTimer()
			stream = cfg.NewStream()
			env = cfg.NewEnv()
			b.StartTimer()
			in, _ = stream.Next()
		}
		d := oracle.Decide(env, in, spec.Deadline)
		env.Step(d, in, spec.Deadline, spec.Deadline)
	}
}

// BenchmarkSimStep measures the raw simulator step.
func BenchmarkSimStep(b *testing.B) {
	prof, _ := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	cfg := runnerConfig(prof, spec)
	env := cfg.NewEnv()
	stream := cfg.NewStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, ok := stream.Next()
		if !ok {
			b.StopTimer()
			stream = cfg.NewStream()
			b.StartTimer()
			in, _ = stream.Next()
		}
		env.Step(sim.Decision{Model: i % prof.NumModels(), Cap: i % prof.NumCaps()},
			in, spec.Deadline, spec.Deadline)
	}
}
