package alert

import (
	"fmt"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// SimConfig describes one simulated deployment: the paper's evaluation
// setup in miniature. It lets library users exercise the scheduler
// end-to-end — including contention dynamics and anytime early-stopping —
// without hardware access or trained networks.
type SimConfig struct {
	// Platform defaults to CPU1.
	Platform *Platform
	// Models defaults to ImageCandidates().
	Models []*Model
	// Spec is the requirement to enforce; Deadline must be positive.
	Spec Spec
	// Contention selects the environment (default: NoContention).
	Contention Contention
	// Bursts, when non-empty, overrides Contention with a scripted
	// schedule of contention windows over input indices.
	Bursts []Burst
	// Inputs is the stream length (default 300).
	Inputs int
	// Seed makes the run reproducible (default 1).
	Seed int64
	// SchedulerOptions tune the ALERT controller.
	SchedulerOptions Options
	// Trace, when set, observes every input's decision and measurement.
	Trace func(TraceSample)
}

// TraceSample is one input's record in a simulation trace.
type TraceSample struct {
	Input       int
	GoalSeconds float64
	Decision    Decision
	Latency     float64
	Energy      float64
	Quality     float64
	DeadlineMet bool
	TrueXi      float64
	ModelName   string
	Contention  bool
}

// SimReport summarizes a simulation run.
type SimReport struct {
	Inputs           int
	AvgLatency       float64
	AvgEnergy        float64
	AvgQuality       float64
	ViolationRate    float64
	DeadlineMissRate float64
}

// Simulate runs the ALERT scheduler over a simulated input stream and
// returns the aggregate report.
func Simulate(cfg SimConfig) (*SimReport, error) {
	if cfg.Platform == nil {
		cfg.Platform = CPU1()
	}
	if cfg.Models == nil {
		cfg.Models = ImageCandidates()
	}
	if cfg.Inputs <= 0 {
		cfg.Inputs = 300
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Spec.Deadline <= 0 {
		return nil, fmt.Errorf("alert: SimConfig.Spec.Deadline must be positive")
	}

	prof, err := dnn.Profile(cfg.Platform, cfg.Models)
	if err != nil {
		return nil, fmt.Errorf("alert: %w", err)
	}

	opts := core.DefaultOptions()
	if cfg.SchedulerOptions.Confidence > 0 {
		opts.Confidence = cfg.SchedulerOptions.Confidence
	}
	if cfg.SchedulerOptions.OverheadFrac > 0 {
		opts.OverheadFrac = cfg.SchedulerOptions.OverheadFrac
	}
	opts.UseVariance = !cfg.SchedulerOptions.DisableVariance

	rcfg := runner.Config{
		Prof:      prof,
		Scenario:  cfg.Contention,
		Spec:      cfg.Spec,
		NumInputs: cfg.Inputs,
		Seed:      cfg.Seed,
	}
	env := rcfg.NewEnv()
	if len(cfg.Bursts) > 0 {
		cont := contention.NewScripted(cfg.Platform.Kind, cfg.Seed*3+2, cfg.Bursts...)
		env = sim.NewEnv(prof, cont, cfg.Seed*3+3)
	}

	sched := baselines.NewAlert("ALERT", prof, cfg.Spec, opts)
	var trace func(in workload.Input, d sim.Decision, out sim.Outcome)
	if cfg.Trace != nil {
		trace = func(in workload.Input, d sim.Decision, out sim.Outcome) {
			cfg.Trace(TraceSample{
				Input:       in.ID,
				GoalSeconds: cfg.Spec.Deadline,
				Decision: Decision{
					Model:       d.Model,
					Cap:         d.Cap,
					CapW:        out.CapApplied,
					PlannedStop: d.PlannedStop,
					Overhead:    d.Overhead,
				},
				Latency:     out.Latency,
				Energy:      out.Energy,
				Quality:     out.Quality,
				DeadlineMet: out.DeadlineMet,
				TrueXi:      out.TrueXi,
				ModelName:   prof.Models[d.Model].Name,
				Contention:  out.ContentionActive,
			})
		}
	}
	rec := runner.RunEnv(rcfg, env, sched, trace)
	return &SimReport{
		Inputs:           rec.N(),
		AvgLatency:       rec.AvgLatency(),
		AvgEnergy:        rec.AvgEnergy(),
		AvgQuality:       rec.AvgQuality(),
		ViolationRate:    rec.ViolationRate(),
		DeadlineMissRate: rec.DeadlineMissRate(),
	}, nil
}
