// Package alert is a Go implementation of ALERT (Accurate Learning for
// Energy and Timeliness, Wan et al., USENIX ATC 2020): a cross-stack
// runtime scheduler that, for every DNN inference request, jointly selects
// an inference model and a system power cap so that user-specified latency,
// accuracy, and energy requirements are met in dynamic environments.
//
// The core idea is a single global slowdown factor ξ — a random variable
// relating the current environment to the offline profiling environment —
// estimated after every input by an adaptive-noise Kalman filter. Its mean
// rescales the profiled latency of every candidate configuration at once;
// its variance measures environment volatility and makes the scheduler
// conservative exactly when the world is unpredictable.
//
// # Quick start
//
//	sched, err := alert.NewScheduler(alert.CPU1(), alert.ImageCandidates(), alert.Options{})
//	if err != nil { ... }
//	spec := alert.Spec{
//		Objective:    alert.MinimizeEnergy,
//		Deadline:     0.1,  // seconds
//		AccuracyGoal: 0.93,
//	}
//	for each input {
//		d, est := sched.Decide(spec)
//		// run models[d.Model] under caps[d.Cap]; for anytime models stop
//		// at d.PlannedStop seconds
//		sched.Observe(alert.Feedback{Decision: d, Latency: measured, IdlePowerW: idle})
//	}
//
// The package also ships the full simulation substrate used to reproduce
// the paper's evaluation (see Simulate and the examples/ directory), so the
// scheduler can be exercised end-to-end without GPUs, RAPL access, or
// trained networks.
package alert

import (
	"fmt"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/sim"
)

// Scheduler is the ALERT runtime for one inference task on one platform.
// It is not safe for concurrent use; serve one inference stream per
// Scheduler, which is the paper's deployment model (§3.6).
type Scheduler struct {
	prof *dnn.ProfileTable
	ctl  *core.Controller
}

// NewScheduler profiles the candidate models on the platform and returns a
// ready scheduler. Options zero values select the paper's defaults.
func NewScheduler(p *Platform, models []*Model, opts Options) (*Scheduler, error) {
	prof, err := dnn.Profile(p, models)
	if err != nil {
		return nil, fmt.Errorf("alert: %w", err)
	}
	o, err := coreOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Scheduler{prof: prof, ctl: core.New(prof, o)}, nil
}

// coreOptions translates the public Options into the controller's, applying
// the paper's defaults for zero values.
func coreOptions(opts Options) (core.Options, error) {
	o := core.DefaultOptions()
	if opts.Prth != 0 {
		if opts.Prth < 0 || opts.Prth >= 1 {
			return o, fmt.Errorf("alert: Prth %g outside [0, 1)", opts.Prth)
		}
	}
	if opts.Confidence > 0 {
		o.Confidence = opts.Confidence
	}
	if opts.OverheadFrac > 0 {
		o.OverheadFrac = opts.OverheadFrac
	}
	o.UseVariance = !opts.DisableVariance
	o.ReferenceScorer = opts.ReferenceScorer
	return o, nil
}

// Options configure a Scheduler. The zero value reproduces the paper's
// configuration.
type Options struct {
	// Prth, when set, is applied to every Spec that does not set its own
	// probabilistic threshold (Eq. 10/11).
	Prth float64
	// Confidence overrides the default 0.98 chance-constraint level used
	// for deadline and accuracy-goal feasibility.
	Confidence float64
	// OverheadFrac overrides the scheduler's self-charged overhead model.
	OverheadFrac float64
	// DisableVariance turns off the probabilistic design, yielding the
	// mean-only ALERT* variant the paper ablates in Figure 10. Only useful
	// for studies.
	DisableVariance bool
	// ReferenceScorer scores candidates with the naive pre-optimization
	// estimator and no decision cache. Decisions are identical to the
	// default fast path — the differential tests pin exactly that — so the
	// knob exists only for those tests, benchmarks, and debugging.
	ReferenceScorer bool
}

// Models returns the profiled candidate set in index order; Decision.Model
// indexes into it.
func (s *Scheduler) Models() []*Model { return s.prof.Models }

// PowerCaps returns the platform's cap ladder in watts; Decision.Cap
// indexes into it.
func (s *Scheduler) PowerCaps() []float64 { return s.prof.Caps }

// Decide selects the configuration for the next input (§3.2). The returned
// Estimate carries the scheduler's predictions for the chosen candidate.
func (s *Scheduler) Decide(spec Spec) (Decision, Estimate) {
	d, est := s.ctl.Decide(spec)
	return Decision{
		Model:       d.Model,
		Cap:         d.Cap,
		CapW:        s.prof.Caps[d.Cap],
		PlannedStop: d.PlannedStop,
		Overhead:    d.Overhead,
	}, est
}

// Decision is the scheduler's output for one input.
type Decision struct {
	// Model indexes Models().
	Model int
	// Cap indexes PowerCaps(); CapW is the same rung in watts.
	Cap  int
	CapW float64
	// PlannedStop, when positive, is the wall-clock second count after
	// which an anytime model should be stopped even if unfinished.
	PlannedStop float64
	// Overhead is the decision cost the scheduler charged itself.
	Overhead float64
}

// Feedback reports the measurement of the input just executed.
type Feedback struct {
	// Decision is the decision that produced this measurement.
	Decision Decision
	// Latency is the measured inference time in seconds.
	Latency float64
	// CompletedStage is the last anytime stage that finished (-1 or 0 for
	// traditional models; ignored for them).
	CompletedStage int
	// IdlePowerW is the measured system power between inputs; 0 means
	// unknown and leaves the idle estimate unchanged.
	IdlePowerW float64
}

// Observe feeds a measurement back into the estimators (§3.2 step 1).
func (s *Scheduler) Observe(fb Feedback) {
	if out, ok := feedbackOutcome(s.prof, fb); ok {
		s.ctl.Observe(out)
	}
}

// feedbackOutcome converts a public Feedback into the controller's
// observation, scaling the profiled latency by the executed anytime
// fraction. ok is false when the measurement carries no signal (non-positive
// latency or nominal time) and must be dropped.
func feedbackOutcome(prof *dnn.ProfileTable, fb Feedback) (out sim.Outcome, ok bool) {
	if fb.Latency <= 0 {
		return out, false
	}
	m := prof.Models[fb.Decision.Model]
	frac := 1.0
	if m.IsAnytime() && fb.CompletedStage >= 0 && fb.CompletedStage < len(m.Stages) {
		frac = m.Stages[fb.CompletedStage].LatencyFrac
	}
	nominal := prof.At(fb.Decision.Model, fb.Decision.Cap) * frac
	if nominal <= 0 {
		return out, false
	}
	return outcomeForFeedback(fb, nominal), true
}

// XiEstimate returns the current (mean, std) of the global slowdown factor.
func (s *Scheduler) XiEstimate() (mu, sigma float64) {
	return s.ctl.XiMean(), s.ctl.XiStd()
}

// IdlePowerRatio returns the current estimate of φ, the DNN-idle power as a
// fraction of the applied cap (Eq. 8).
func (s *Scheduler) IdlePowerRatio() float64 { return s.ctl.IdleRatio() }
