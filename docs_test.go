package alert

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks walks every markdown file in the repository and checks that
// relative links resolve to files or directories that exist — the docs
// link-check gate CI runs, so README/ARCHITECTURE references cannot rot as
// files move.
func TestDocLinks(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		switch d.Name() {
		case "PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md":
			// Generated source-paper artifacts, not maintained docs; their
			// links point at assets that were never vendored.
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; a network check does not belong in tests
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure fragment link within the same file
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s: broken link %q (resolved %s)", rel, m[1], resolved)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Error("no links checked; the walker is likely broken")
	}
}
