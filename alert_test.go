package alert

import (
	"math"
	"testing"
)

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(CPU1(), nil, Options{}); err == nil {
		t.Error("empty candidate set should fail")
	}
	if _, err := NewScheduler(Embedded(), ImageCandidates(), Options{}); err == nil {
		t.Error("image candidates should OOM on the embedded board")
	}
	if _, err := NewScheduler(CPU1(), ImageCandidates(), Options{Prth: 1.5}); err == nil {
		t.Error("Prth outside [0,1) should fail")
	}
	s, err := NewScheduler(CPU1(), ImageCandidates(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Models()) != len(ImageCandidates()) {
		t.Error("model set lost")
	}
	if len(s.PowerCaps()) == 0 {
		t.Error("cap ladder missing")
	}
}

func TestDecideObserveLoop(t *testing.T) {
	s, err := NewScheduler(CPU1(), ImageCandidates(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.92}
	for i := 0; i < 50; i++ {
		d, est := s.Decide(spec)
		if d.Model < 0 || d.Model >= len(s.Models()) {
			t.Fatal("invalid model index")
		}
		if d.CapW != s.PowerCaps()[d.Cap] {
			t.Fatal("CapW inconsistent with Cap index")
		}
		if est.Quality <= 0 || est.Quality > 1 {
			t.Fatalf("estimate quality %g", est.Quality)
		}
		// Report a world running 1.2x slower than profiled.
		m := s.Models()[d.Model]
		nominal := m.RefLatency / CPU1().Speed(d.CapW)
		if d.PlannedStop > 0 && d.PlannedStop < nominal*1.2 {
			nominal = d.PlannedStop / 1.2 // executed portion only
		}
		s.Observe(Feedback{
			Decision:       d,
			Latency:        1.2 * nominal,
			CompletedStage: len(m.Stages) - 1,
			IdlePowerW:     6,
		})
	}
	mu, sigma := s.XiEstimate()
	if math.Abs(mu-1.2) > 0.1 {
		t.Errorf("xi estimate %g, want ~1.2", mu)
	}
	if sigma <= 0 {
		t.Error("sigma must be positive")
	}
	if r := s.IdlePowerRatio(); r <= 0 || r >= 1 {
		t.Errorf("idle ratio %g", r)
	}
}

func TestObserveIgnoresBadFeedback(t *testing.T) {
	s, _ := NewScheduler(CPU1(), ImageCandidates(), Options{})
	mu0, _ := s.XiEstimate()
	s.Observe(Feedback{Latency: 0})
	s.Observe(Feedback{Latency: -3})
	if mu, _ := s.XiEstimate(); mu != mu0 {
		t.Error("bad feedback changed the estimate")
	}
}

func TestObserveWithoutIdlePowerKeepsPhi(t *testing.T) {
	s, _ := NewScheduler(CPU1(), ImageCandidates(), Options{})
	phi := s.IdlePowerRatio()
	d, _ := s.Decide(Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9})
	s.Observe(Feedback{Decision: d, Latency: 0.05})
	if s.IdlePowerRatio() != phi {
		t.Error("phi moved without an idle-power measurement")
	}
}

func TestSimulateBasic(t *testing.T) {
	rep, err := Simulate(SimConfig{
		Spec:   Spec{Objective: MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.92},
		Inputs: 200,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inputs != 200 {
		t.Fatalf("inputs = %d", rep.Inputs)
	}
	if rep.AvgLatency <= 0 || rep.AvgEnergy <= 0 {
		t.Error("degenerate report")
	}
	if rep.AvgQuality < 0.85 {
		t.Errorf("quality %g suspiciously low for a loose setting", rep.AvgQuality)
	}
	if rep.ViolationRate > 0.1 {
		t.Errorf("violations %g on a feasible setting", rep.ViolationRate)
	}
}

func TestSimulateRequiresDeadline(t *testing.T) {
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Error("missing deadline should fail")
	}
}

func TestSimulateTraceAndBursts(t *testing.T) {
	var contended, total int
	_, err := Simulate(SimConfig{
		Spec:   Spec{Objective: MaximizeAccuracy, Deadline: 0.2, EnergyBudget: 9},
		Bursts: []Burst{{Start: 20, End: 60, Scenario: MemoryContention}},
		Inputs: 100,
		Seed:   5,
		Trace: func(s TraceSample) {
			total++
			if s.Contention {
				contended++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("trace saw %d inputs", total)
	}
	if contended < 30 || contended > 50 {
		t.Errorf("contended inputs = %d, want ~40 (burst window)", contended)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{
		Spec:       Spec{Objective: MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.92},
		Contention: MemoryContention,
		Inputs:     150,
		Seed:       11,
	}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(cfg)
	if *a != *b {
		t.Error("same-seed simulations diverged")
	}
}

func TestAlertStarOptionWorks(t *testing.T) {
	cfg := SimConfig{
		Spec:       Spec{Objective: MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.92},
		Contention: MemoryContention,
		Inputs:     300,
		Seed:       13,
	}
	full, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SchedulerOptions.DisableVariance = true
	star, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The mean-only ablation must violate at least as often (Fig. 10).
	if star.ViolationRate < full.ViolationRate-0.01 {
		t.Errorf("ALERT* violations %g below ALERT %g", star.ViolationRate, full.ViolationRate)
	}
}

func TestPlatformsExported(t *testing.T) {
	if len(Platforms()) != 4 {
		t.Error("expected the four Table 1 platforms")
	}
	if ImageNetZoo(1)[0] == nil || len(ImageNetZoo(1)) != 42 {
		t.Error("zoo export broken")
	}
	if PerplexityFromQuality(0.7) <= 0 {
		t.Error("perplexity export broken")
	}
}
