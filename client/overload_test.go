package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/netserve"
)

// TestDynamicRetryAfterHint: against an adaptive front end, the
// *OverloadError a saturated gate surfaces carries the controller's live
// drain estimate — scaled to the measured service time — not the
// configured static hint. The static hint is set to an absurd hour so the
// test can tell the two apart.
func TestDynamicRetryAfterHint(t *testing.T) {
	c, fe := startFrontEnd(t, netserve.Config{
		MaxInflight: 1, MaxQueue: 1, Adaptive: true,
		RetryAfter:   time.Hour,
		ServiceDelay: 20 * time.Millisecond,
	})
	ctx := context.Background()

	// Warm the controller's service-time estimate through the only path a
	// client has: a served decide (ServiceDelay makes it ~20ms).
	if _, _, err := c.Decide(ctx, 1, testSpec()); err != nil {
		t.Fatal(err)
	}

	// Saturate: hold the only slot, park a patient request in the only
	// queue position.
	fe.HoldTokenForTest()
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		c.Decide(ctx, 2, alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 30, AccuracyGoal: 0.9})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for fe.OverloadStats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("parked decide never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	_, _, err := c.Decide(ctx, 3, testSpec())
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("probe error = %v, want *OverloadError", err)
	}
	// Drain estimate: (1 queued + 1) × ~20ms service / 1 inflight ≈ 40ms.
	// The exact value floats with scheduler jitter; what matters is that
	// it is in the measured range, not the 1h static hint.
	if oe.RetryAfter < 40*time.Millisecond || oe.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want ~40ms drain estimate (static hint is 1h)", oe.RetryAfter)
	}

	fe.ReleaseTokenForTest()
	<-parked
}
