package client

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/netserve"
)

// startBinaryFrontEnd stands up a front end serving both transports: the
// HTTP listener (for control-plane reads and discovery) plus a binary
// listener, and returns the front end's pieces so tests can build clients
// with whatever Options they need.
func startBinaryFrontEnd(t testing.TB, cfg netserve.Config) (url string, fe *netserve.Server, bs *netserve.BinaryServer) {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	fe = netserve.New(srv, cfg)
	ts := httptest.NewServer(fe)
	t.Cleanup(ts.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs = netserve.NewBinary(fe, ln, netserve.BinaryConfig{})
	go bs.Serve()
	t.Cleanup(func() { bs.Close() })
	return ts.URL, fe, bs
}

// TestBinaryTransportMatchesJSON drives two identical back ends through
// the same decide/observe sequence — one client on the binary transport,
// one on HTTP/JSON — and requires bit-identical decisions at every step:
// the transports must be indistinguishable by behavior.
func TestBinaryTransportMatchesJSON(t *testing.T) {
	binURL, _, bs := startBinaryFrontEnd(t, netserve.Config{})
	bc, err := New(binURL, Options{BinaryAddr: bs.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bc.Close)
	jc, _ := startFrontEnd(t, netserve.Config{})

	ctx := context.Background()
	const stream = 4
	for i := 0; i < 30; i++ {
		bd, best, err := bc.Decide(ctx, stream, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		jd, jest, err := jc.Decide(ctx, stream, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if bd != jd {
			t.Fatalf("step %d: binary decision %+v != JSON %+v", i, bd, jd)
		}
		if math.Float64bits(best.LatMean) != math.Float64bits(jest.LatMean) {
			t.Fatalf("step %d: estimates diverge: %v vs %v", i, best.LatMean, jest.LatMean)
		}
		fb := alert.Feedback{Decision: bd, Latency: best.LatMean * 0.93, CompletedStage: -1}
		if err := bc.Observe(ctx, stream, fb); err != nil {
			t.Fatal(err)
		}
		if err := jc.Observe(ctx, stream, fb); err != nil {
			t.Fatal(err)
		}
	}
	if snap := bs.BinStats(); snap.Decides != 30 || snap.Observes != 30 {
		t.Errorf("binary listener saw %d decides %d observes, want 30/30", snap.Decides, snap.Observes)
	}
}

// TestBinaryTransportBatchAndMigration exercises the remaining data-plane
// surface over binary: DecideBatch, checkpoint, export (with ErrNoSession
// on a missing stream), import, and evict.
func TestBinaryTransportBatchAndMigration(t *testing.T) {
	url, _, bs := startBinaryFrontEnd(t, netserve.Config{})
	c, err := New(url, Options{BinaryAddr: bs.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()

	res, err := c.DecideBatch(ctx, []alert.BatchRequest{
		{Stream: 1, Spec: testSpec()},
		{Stream: 2, Spec: testSpec()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Stream != 1 || res[1].Stream != 2 || res[0].Estimate.LatMean <= 0 {
		t.Fatalf("batch results: %+v", res)
	}

	if _, err := c.CheckpointStream(ctx, 1); err != nil {
		t.Fatal(err)
	}
	snap, err := c.ExportStream(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExportStream(ctx, 1); !errors.Is(err, ErrNoSession) {
		t.Fatalf("re-export of a moved stream = %v, want ErrNoSession", err)
	}
	if _, err := c.CheckpointStream(ctx, 1); !errors.Is(err, ErrNoSession) {
		t.Fatalf("checkpoint of a moved stream = %v, want ErrNoSession", err)
	}
	if err := c.ImportStream(ctx, 1, snap); err != nil {
		t.Fatal(err)
	}
	var ae *APIError
	if err := c.ImportStream(ctx, 1, snap); !errors.As(err, &ae) {
		t.Fatalf("double import = %v, want *APIError conflict", err)
	}
	if err := c.EvictStream(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if snap := bs.BinStats(); snap.Batches != 1 || snap.Exports != 1 || snap.Imports != 1 || snap.Evictions != 1 {
		t.Errorf("binary op counters: %+v", snap)
	}
}

// TestPreferBinaryDiscovery checks the upgrade path cluster clients use: a
// client given only the HTTP address probes /v1/stats, finds the
// advertised binary listener, and moves the data plane onto it — including
// when the server advertises a wildcard host, which the client replaces
// with the host it already reaches the server by.
func TestPreferBinaryDiscovery(t *testing.T) {
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	fe := netserve.New(srv, netserve.Config{})
	ts := httptest.NewServer(fe)
	t.Cleanup(ts.Close)
	// A wildcard bind advertises an unspecified host (e.g. "[::]:p"); the
	// client must substitute the HTTP host rather than dial the wildcard.
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		t.Fatal(err)
	}
	bs := netserve.NewBinary(fe, ln, netserve.BinaryConfig{})
	go bs.Serve()
	t.Cleanup(func() { bs.Close() })

	c, err := New(ts.URL, Options{PreferBinary: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	ctx := context.Background()
	if _, _, err := c.Decide(ctx, 7, testSpec()); err != nil {
		t.Fatal(err)
	}
	if snap := bs.BinStats(); snap.Decides != 1 {
		t.Fatalf("binary listener saw %d decides, want 1 (discovery failed)", snap.Decides)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Net.Decides != 0 {
		t.Errorf("HTTP served %d decides, want 0 (data plane should ride binary)", st.Net.Decides)
	}
}

// TestPreferBinaryFallsBackToJSON: against a server with no binary
// listener the same Options keep working — the probe concludes "JSON only"
// and the client never dials anything.
func TestPreferBinaryFallsBackToJSON(t *testing.T) {
	jc, fe := startFrontEnd(t, netserve.Config{})
	jc.preferBinary = true
	jc.binSettled = false

	ctx := context.Background()
	if _, _, err := jc.Decide(ctx, 3, testSpec()); err != nil {
		t.Fatal(err)
	}
	st, err := jc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Net.Decides != 1 {
		t.Errorf("HTTP decides = %d, want 1 (fallback to JSON)", st.Net.Decides)
	}
	_ = fe
}

// TestBinaryOverloadRetries pins the retry loop over the binary transport:
// a draining server sheds every decide with a 503 error frame, the client
// retries MaxRetries times after the hint, and the terminal error is the
// same *OverloadError the HTTP path yields.
func TestBinaryOverloadRetries(t *testing.T) {
	url, fe, bs := startBinaryFrontEnd(t, netserve.Config{RetryAfter: time.Millisecond})
	if err := fe.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	c, err := New(url, Options{BinaryAddr: bs.Addr(), MaxRetries: 3, BackoffBase: time.Millisecond, BackoffSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	_, _, err = c.Decide(context.Background(), 9, testSpec())
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("decide against a draining server = %v, want *OverloadError", err)
	}
	if oe.RetryAfter != time.Millisecond {
		t.Errorf("RetryAfter hint = %v, want 1ms", oe.RetryAfter)
	}
	if snap := bs.BinStats(); snap.RejectedDraining != 4 {
		t.Errorf("server saw %d rejected attempts, want 4 (1 + 3 retries)", snap.RejectedDraining)
	}
}

// TestBinaryTransportSurvivesConnLoss kills the transport's live
// connections out from under it and checks the next call redials instead
// of failing forever.
func TestBinaryTransportSurvivesConnLoss(t *testing.T) {
	url, _, bs := startBinaryFrontEnd(t, netserve.Config{})
	c, err := New(url, Options{BinaryAddr: bs.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()

	if _, _, err := c.Decide(ctx, 2, testSpec()); err != nil {
		t.Fatal(err)
	}
	// Reach into the transport and sever every pooled connection.
	c.binMu.Lock()
	bt := c.bin
	c.binMu.Unlock()
	bt.mu.Lock()
	for _, cc := range bt.conns {
		if cc != nil {
			cc.conn.Close()
		}
	}
	bt.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := c.Decide(ctx, 2, testSpec()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("transport never recovered from severed connections")
		}
	}
}
