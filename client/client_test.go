package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/netserve"
)

// startFrontEnd stands up a real alert.Server behind a netserve front end
// on a loopback listener and returns a connected client.
func startFrontEnd(t testing.TB, cfg netserve.Config) (*Client, *netserve.Server) {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	fe := netserve.New(srv, cfg)
	ts := httptest.NewServer(fe)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, fe
}

func testSpec() alert.Spec {
	return alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
}

// TestClientRoundTrip drives the full decide → observe → batch → stats →
// evict surface through the typed client against a live front end.
func TestClientRoundTrip(t *testing.T) {
	c, _ := startFrontEnd(t, netserve.Config{})
	ctx := context.Background()

	d, est, err := c.Decide(ctx, 5, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if est.LatMean <= 0 || d.CapW <= 0 {
		t.Fatalf("empty decision/estimate: %+v / %+v", d, est)
	}

	if err := c.Observe(ctx, 5, alert.Feedback{
		Decision: d, Latency: est.LatMean * 1.2, CompletedStage: -1, IdlePowerW: 5,
	}); err != nil {
		t.Fatal(err)
	}

	var b Batch
	b.Add(5, testSpec())
	b.Add(6, testSpec())
	b.Add(5, testSpec())
	if b.Len() != 3 {
		t.Fatalf("batch len %d, want 3", b.Len())
	}
	res, err := b.Flush(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Stream != 5 || res[1].Stream != 6 || res[2].Stream != 5 {
		t.Fatalf("batch results wrong: %+v", res)
	}
	if b.Len() != 0 {
		t.Errorf("batch not reset after Flush")
	}
	if res, err := b.Flush(ctx, c); err != nil || res != nil {
		t.Errorf("empty flush = %v, %v; want nil, nil", res, err)
	}

	ids, err := c.Streams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 6 {
		t.Fatalf("streams = %v, want [5 6]", ids)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Serve.Decisions != 4 || stats.Net.Decides != 1 || stats.Net.BatchDecisions != 3 {
		t.Errorf("stats = serve %+v net %+v", stats.Serve, stats.Net)
	}

	if err := c.EvictStream(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.EvictStream(ctx, 999); err != nil { // unknown stream: no-op
		t.Fatal(err)
	}
	if ids, err = c.Streams(ctx); err != nil || len(ids) != 1 || ids[0] != 6 {
		t.Fatalf("streams after evict = %v (%v), want [6]", ids, err)
	}
}

// TestClientMatchesInProcess: a scripted stream driven through the client
// makes bit-identical decisions to the same script against alert.Server
// in-process — the wire carries every float exactly.
func TestClientMatchesInProcess(t *testing.T) {
	c, _ := startFrontEnd(t, netserve.Config{})
	local, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	ctx := context.Background()
	spec := testSpec()
	for i := 0; i < 30; i++ {
		want, wantEst := local.Decide(9, spec)
		got, gotEst, err := c.Decide(ctx, 9, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || gotEst != wantEst {
			t.Fatalf("step %d: remote (%+v, %+v) != local (%+v, %+v)", i, got, gotEst, want, wantEst)
		}
		fb := alert.Feedback{
			Decision:       want,
			Latency:        wantEst.LatMean * (0.85 + 0.02*float64(i%15)),
			CompletedStage: -1,
			IdlePowerW:     4,
		}
		local.Observe(9, fb)
		if err := c.Observe(ctx, 9, fb); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOverloadErrorSurface: with retries off, a saturated gate surfaces as
// *OverloadError carrying the server's Retry-After hint.
func TestOverloadErrorSurface(t *testing.T) {
	c, fe := startFrontEnd(t, netserve.Config{MaxInflight: 1, MaxQueue: 1, RetryAfter: 20 * time.Millisecond})
	ctx := context.Background()

	// Saturate: hold the only token, keep a retrying request knocking at
	// the gate (it may hold the queue slot or be 429ing, depending on the
	// race with the probes below), then overflow with probes until one is
	// rejected.
	fe.HoldTokenForTest()
	retrier, err := New(c.base, Options{MaxRetries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer retrier.Close()
	queued := make(chan error, 1)
	go func() {
		_, _, err := retrier.Decide(ctx, 1, alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 5, AccuracyGoal: 0.9})
		queued <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, err := c.Decide(ctx, 2, testSpec())
		var oe *OverloadError
		if errors.As(err, &oe) {
			if oe.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429", oe.StatusCode)
			}
			if oe.RetryAfter != 20*time.Millisecond {
				t.Fatalf("retry-after %s, want 20ms", oe.RetryAfter)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gate never saturated")
		}
	}

	// Open the gate: the queued request must be served — admission is
	// all-or-nothing, a request that got a queue slot is never dropped.
	fe.ReleaseTokenForTest()
	if err := <-queued; err != nil {
		t.Fatalf("queued request must be served once the gate opens: %v", err)
	}
}

// TestRetryOnOverload: with MaxRetries set, the client rides out a
// transient overload by itself.
func TestRetryOnOverload(t *testing.T) {
	c, fe := startFrontEnd(t, netserve.Config{MaxInflight: 1, MaxQueue: 1, RetryAfter: 5 * time.Millisecond})
	retry, err := New(c.base, Options{MaxRetries: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer retry.Close()

	fe.HoldTokenForTest()
	released := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		fe.ReleaseTokenForTest()
		close(released)
	}()
	// Fill the queue slot so the retrying client initially sees 429s.
	go c.Decide(context.Background(), 1, alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 30, AccuracyGoal: 0.9})
	time.Sleep(10 * time.Millisecond)

	if _, _, err := retry.Decide(context.Background(), 2, testSpec()); err != nil {
		t.Fatalf("retrying decide failed through transient overload: %v", err)
	}
	<-released
}

// TestContextCancellation: a canceled context aborts both the request and
// the retry loop.
func TestContextCancellation(t *testing.T) {
	c, fe := startFrontEnd(t, netserve.Config{MaxInflight: 1, MaxQueue: 0, RetryAfter: time.Hour})
	fe.HoldTokenForTest()
	defer fe.ReleaseTokenForTest()

	retry, err := New(c.base, Options{MaxRetries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer retry.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = retry.Decide(ctx, 1, testSpec())
	if err == nil {
		t.Fatal("decide against a saturated gate with canceled context must fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation took %s", time.Since(start))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("ftp://host", Options{}); err == nil {
		t.Error("non-http scheme must error")
	}
	if _, err := New("://bad", Options{}); err == nil {
		t.Error("unparseable URL must error")
	}
	c, err := New("http://host:1234/", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://host:1234" {
		t.Errorf("base = %q, want trailing slash trimmed", c.base)
	}
}

// TestClientExportImport: the typed snapshot methods round-trip a session
// through two front ends bit-exactly, and a missing stream surfaces as
// ErrNoSession.
func TestClientExportImport(t *testing.T) {
	src, _ := startFrontEnd(t, netserve.Config{})
	dst, _ := startFrontEnd(t, netserve.Config{})
	ctx := context.Background()

	const stream = 7
	spec := testSpec()
	for i := 0; i < 25; i++ {
		d, est, err := src.Decide(ctx, stream, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Observe(ctx, stream, alert.Feedback{
			Decision: d, Latency: est.LatMean * 1.1, CompletedStage: -1, IdlePowerW: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := src.ExportStream(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.Decisions != 25 {
		t.Fatalf("snapshot %+v, want version 1, 25 decisions", snap)
	}
	// The session left the source node with the export.
	if _, err := src.ExportStream(ctx, stream); !errors.Is(err, ErrNoSession) {
		t.Fatalf("re-export error = %v, want ErrNoSession", err)
	}

	if err := dst.ImportStream(ctx, stream, snap); err != nil {
		t.Fatal(err)
	}
	// The imported session is the exported one, bit for bit.
	back, err := dst.ExportStream(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Fatalf("round-tripped snapshot changed:\n got %+v\nwant %+v", back, snap)
	}

	// An invalid snapshot is refused client-side by the server with a plain
	// error, not a panic or silent accept.
	var bad alert.SessionSnapshot
	if err := dst.ImportStream(ctx, stream, bad); err == nil {
		t.Fatal("importing a zero snapshot succeeded, want refusal")
	}
}
