package client

import (
	"net/http"
	"testing"
	"time"

	"github.com/alert-project/alert/internal/netserve"
)

// TestRetryAfterOfEdgeCases extends the basic parser test with the hostile
// corners: precedence between the body hint and the header, duplicate
// Retry-After headers (forbidden by RFC 9110 but sent anyway by misbehaving
// servers — Header.Get takes the first), the exact cap boundary, and
// non-finite values. None may ever yield a negative or multi-hour sleep.
func TestRetryAfterOfEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		ms      int64
		headers []string // Retry-After values, in order
		want    time.Duration
	}{
		{name: "body ms preferred over header", ms: 250, headers: []string{"5"}, want: 250 * time.Millisecond},
		{name: "negative body ms ignored, header used", ms: -100, headers: []string{"2"}, want: 2 * time.Second},
		{name: "whitespace-padded seconds", headers: []string{"  2  "}, want: 2 * time.Second},
		{name: "huge seconds degrade to no hint", headers: []string{"86400"}, want: 0},
		{name: "at the cap", headers: []string{"3600"}, want: 3600 * time.Second},
		{name: "just over the cap", headers: []string{"3600.5"}, want: 0},
		{name: "positive infinity", headers: []string{"+Inf"}, want: 0},
		{name: "duplicate headers take the first", headers: []string{"2", "900"}, want: 2 * time.Second},
		{name: "duplicate with garbage first stays unhinted", headers: []string{"soon", "2"}, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			for _, v := range tc.headers {
				resp.Header.Add("Retry-After", v)
			}
			got := retryAfterOf(resp, netserve.ErrorResponse{RetryAfterMs: tc.ms})
			if got != tc.want {
				t.Errorf("retryAfterOf(ms=%d, headers=%q) = %v, want %v", tc.ms, tc.headers, got, tc.want)
			}
		})
	}
}
