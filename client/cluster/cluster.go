// Package cluster turns a set of alertserve nodes into one logical
// controller: streams are routed to nodes by consistent hashing, node
// health is probed through GET /v1/stats, and live sessions migrate
// between nodes with the drain → snapshot → ship → resume protocol built
// on GET /v1/streams/{id}/snapshot and PUT /v1/streams/{id}.
//
// Routing is coordination-free: every client that knows the same member
// set hashes every stream to the same node, so no directory service is
// needed. The one piece of soft state a Cluster carries is its pin table —
// streams explicitly Migrated off their hash-home stay pinned to their new
// node until the pin is dropped — and that state lives in the client, not
// the cluster, because the session itself lives wherever it was last
// imported. Decisions are bit-exact across the move: the snapshot wire
// format is canonical binary (see core.SessionSnapshot), so a stream served
// by three nodes in sequence makes byte-identical decisions to one served
// by a single process.
//
// Membership is static at construction and refreshable at runtime:
// Refresh unions the peer lists advertised by reachable members (the
// -peers soft state in /v1/stats), so a cluster bootstrapped from one seed
// address discovers the rest.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/internal/hashring"
)

// Options configures a Cluster.
type Options struct {
	// Client is applied to every per-node client (retry budget, backoff
	// shape, timeouts). The zero value means client.Options defaults.
	Client client.Options
}

// Cluster routes streams across alertserve nodes. All methods are safe for
// concurrent use.
type Cluster struct {
	opts client.Options

	mu        sync.RWMutex
	nodes     map[string]*client.Client // every current member, by address
	ring      hashring.Ring
	pins      map[int]string // stream -> address, overriding the ring
	migrating map[int]bool   // streams with a Migrate in flight

	// Membership-subscription soft state (sync.go). Guarded by sync.mu,
	// not c.mu: sync rounds call SetMembers, which takes c.mu.
	sync          syncState
	syncThreshold int
	syncChange    func([]string)
}

// New builds a cluster over the given member addresses (host:port or full
// URLs, as accepted by client.New). The member list may be refreshed later
// with Refresh or SetMembers; it must be non-empty here.
func New(addrs []string, opts Options) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no members")
	}
	c := &Cluster{
		opts:      opts.Client,
		nodes:     make(map[string]*client.Client, len(addrs)),
		pins:      make(map[int]string),
		migrating: make(map[int]bool),
	}
	if err := c.setMembers(addrs); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close releases every per-node client.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.nodes {
		cl.Close()
	}
	c.nodes = map[string]*client.Client{}
	c.ring = hashring.Ring{}
}

// Members returns the current member addresses, sorted.
func (c *Cluster) Members() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.nodes))
	for addr := range c.nodes {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// SetMembers replaces the member list, rebuilding the ring. Clients for
// departed members are closed; pins onto departed members are dropped (the
// stream falls back to its hash-home, where a fresh session will form —
// migrate before removing a node to avoid that). Existing members keep
// their connections.
func (c *Cluster) SetMembers(addrs []string) error {
	if len(addrs) == 0 {
		return errors.New("cluster: no members")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setMembers(addrs)
}

// setMembers is SetMembers without locking; callers hold c.mu (or, from
// New, exclusive ownership).
func (c *Cluster) setMembers(addrs []string) error {
	next := make(map[string]*client.Client, len(addrs))
	for _, addr := range addrs {
		if _, dup := next[addr]; dup {
			continue
		}
		if cl, ok := c.nodes[addr]; ok {
			next[addr] = cl
			continue
		}
		cl, err := client.New(addr, c.opts)
		if err != nil {
			for a, ncl := range next {
				if _, kept := c.nodes[a]; !kept {
					ncl.Close()
				}
			}
			return fmt.Errorf("cluster: member %s: %w", addr, err)
		}
		next[addr] = cl
	}
	for addr, cl := range c.nodes {
		if _, kept := next[addr]; !kept {
			cl.Close()
		}
	}
	members := make([]string, 0, len(next))
	for addr := range next {
		members = append(members, addr)
	}
	c.nodes = next
	c.ring = hashring.Build(members)
	for stream, addr := range c.pins {
		if _, ok := next[addr]; !ok {
			delete(c.pins, stream)
		}
	}
	return nil
}

// Route returns the address currently serving a stream: its pin if
// migrated, otherwise its consistent-hash home.
func (c *Cluster) Route(stream int) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if addr, ok := c.pins[stream]; ok {
		return addr
	}
	return c.ring.Owner(stream)
}

// Node returns the underlying client for a member address, for operations
// the Cluster does not route itself (stats, drain coordination).
func (c *Cluster) Node(addr string) (*client.Client, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.nodes[addr]
	return cl, ok
}

// clientFor resolves a stream to its serving node's client.
func (c *Cluster) clientFor(stream int) (*client.Client, string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	addr, ok := c.pins[stream]
	if !ok {
		addr = c.ring.Owner(stream)
	}
	cl, live := c.nodes[addr]
	if !live {
		return nil, addr, fmt.Errorf("cluster: stream %d routes to unknown member %q", stream, addr)
	}
	return cl, addr, nil
}

// Decide routes the request to the stream's serving node.
func (c *Cluster) Decide(ctx context.Context, stream int, spec alert.Spec) (alert.Decision, alert.Estimate, error) {
	cl, _, err := c.clientFor(stream)
	if err != nil {
		return alert.Decision{}, alert.Estimate{}, err
	}
	return cl.Decide(ctx, stream, spec)
}

// DecideServed is Decide plus the identity of the node that actually served
// the decision as the server reported it (its -node-id, which need not
// equal the routed address). The chaos harness's single-ownership checker
// feeds on it: every decision is attributed to a member, so a stream served
// by two nodes at once cannot hide.
func (c *Cluster) DecideServed(ctx context.Context, stream int, spec alert.Spec) (alert.Decision, alert.Estimate, string, error) {
	cl, _, err := c.clientFor(stream)
	if err != nil {
		return alert.Decision{}, alert.Estimate{}, "", err
	}
	return cl.DecideServed(ctx, stream, spec)
}

// Observe routes the feedback to the stream's serving node.
func (c *Cluster) Observe(ctx context.Context, stream int, fb alert.Feedback) error {
	cl, _, err := c.clientFor(stream)
	if err != nil {
		return err
	}
	return cl.Observe(ctx, stream, fb)
}

// Health probes every member's /v1/stats concurrently and returns each
// member's probe error (nil = healthy). Unlike routed traffic a probe is
// expected to fail sometimes, so the per-member errors are data, not a
// method error.
func (c *Cluster) Health(ctx context.Context) map[string]error {
	c.mu.RLock()
	nodes := make(map[string]*client.Client, len(c.nodes))
	for addr, cl := range c.nodes {
		nodes[addr] = cl
	}
	c.mu.RUnlock()

	out := make(map[string]error, len(nodes))
	var (
		wg sync.WaitGroup
		om sync.Mutex
	)
	for addr, cl := range nodes {
		wg.Add(1)
		go func(addr string, cl *client.Client) {
			defer wg.Done()
			_, err := cl.Stats(ctx)
			om.Lock()
			out[addr] = err
			om.Unlock()
		}(addr, cl)
	}
	wg.Wait()
	return out
}

// Refresh unions the peer lists advertised by every reachable member into
// the member set and rebuilds the ring. It returns an error only if no
// member was reachable; a partially reachable cluster refreshes from the
// members that answered.
func (c *Cluster) Refresh(ctx context.Context) error {
	members := c.Members()
	seen := make(map[string]bool, len(members))
	for _, addr := range members {
		seen[addr] = true
	}
	reached := 0
	var firstErr error
	for _, addr := range members {
		cl, ok := c.Node(addr)
		if !ok {
			continue
		}
		stats, err := cl.Stats(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: refresh via %s: %w", addr, err)
			}
			continue
		}
		reached++
		for _, peer := range stats.Peers {
			if peer != "" && !seen[peer] {
				seen[peer] = true
				members = append(members, peer)
			}
		}
	}
	if reached == 0 {
		return firstErr
	}
	return c.SetMembers(members)
}

// ErrMigrationInFlight reports that another Migrate for the same stream is
// still running on this Cluster. Concurrent migrations of one stream are
// refused rather than serialized: the loser's from/to plan was made against
// a routing state the winner is in the middle of changing, so running it
// afterwards would be wrong anyway. The caller re-plans (or simply skips —
// the stream is being handled).
var ErrMigrationInFlight = errors.New("cluster: migration already in flight for stream")

// Migrate moves a stream's live session from one member to another:
// export (which drains the stream's queued work and atomically removes the
// session), ship the canonical snapshot, import, and pin the stream so
// subsequent routed traffic resumes on the target. A stream with no
// session on the source is nothing to ship: Migrate pins and returns nil,
// so migration plans are idempotent.
//
// At most one Migrate per stream runs at a time on a Cluster: a concurrent
// second call gets ErrMigrationInFlight (wrapped) immediately. Without the
// guard two racing migrations could fork the stream — each exporting,
// importing to different targets, and pinning over each other — which is
// exactly the double-serve state the cluster exists to prevent.
//
// If the import is refused the session is re-imported into the source
// (the export already removed it there); only if that recovery also fails
// is the session lost, and the returned error says so.
func (c *Cluster) Migrate(ctx context.Context, stream int, from, to string) error {
	if from == to {
		return nil
	}
	c.mu.Lock()
	if c.migrating[stream] {
		c.mu.Unlock()
		return fmt.Errorf("%w: stream %d", ErrMigrationInFlight, stream)
	}
	c.migrating[stream] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.migrating, stream)
		c.mu.Unlock()
	}()

	src, ok := c.Node(from)
	if !ok {
		return fmt.Errorf("cluster: migrate source %q is not a member", from)
	}
	dst, ok := c.Node(to)
	if !ok {
		return fmt.Errorf("cluster: migrate target %q is not a member", to)
	}

	snap, err := src.ExportStream(ctx, stream)
	if errors.Is(err, client.ErrNoSession) {
		c.pin(stream, to)
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: export stream %d from %s: %w", stream, from, err)
	}
	if err := dst.ImportStream(ctx, stream, snap); err != nil {
		if rerr := src.ImportStream(ctx, stream, snap); rerr != nil {
			return fmt.Errorf("cluster: import stream %d into %s failed (%w) and restore to %s failed (%v): session lost",
				stream, to, err, from, rerr)
		}
		return fmt.Errorf("cluster: import stream %d into %s (session restored on %s): %w", stream, to, from, err)
	}
	c.pin(stream, to)
	return nil
}

// pin records that a stream now lives off its hash-home. A pin onto the
// stream's hash-home is dropped instead of stored: the ring already routes
// there.
func (c *Cluster) pin(stream int, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring.Owner(stream) == addr {
		delete(c.pins, stream)
		return
	}
	c.pins[stream] = addr
}

// Pin explicitly routes a stream to a member, overriding the ring — the
// restart-aware hook chaos harnesses and rebalancers use when they move a
// session by hand (e.g. import from a crash checkpoint) and must point
// routing at wherever the session actually lives. Pinning to the stream's
// hash-home just drops any pin. It refuses a non-member address.
func (c *Cluster) Pin(stream int, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[addr]; !ok {
		return fmt.Errorf("cluster: pin target %q is not a member", addr)
	}
	if c.ring.Owner(stream) == addr {
		delete(c.pins, stream)
		return nil
	}
	c.pins[stream] = addr
	return nil
}

// AddMember adds one address to the member set (a node coming back after a
// restart, or a fresh node joining), rebuilding the ring. Adding an
// existing member is a no-op. Note that re-adding a member remaps ~1/N of
// unpinned streams' hash-homes onto it while their sessions still live
// elsewhere; callers either migrate those streams to the new home or Pin
// them where they are, or their next request forks a fresh session.
func (c *Cluster) AddMember(addr string) error {
	members := c.Members()
	for _, m := range members {
		if m == addr {
			return nil
		}
	}
	return c.SetMembers(append(members, addr))
}

// RemoveMember drops one address from the member set (a killed or draining
// node), rebuilding the ring and dropping pins onto it. Removing the last
// member is refused; removing a non-member is a no-op.
func (c *Cluster) RemoveMember(addr string) error {
	members := c.Members()
	kept := members[:0]
	for _, m := range members {
		if m != addr {
			kept = append(kept, m)
		}
	}
	if len(kept) == len(members) {
		return nil
	}
	if len(kept) == 0 {
		return errors.New("cluster: cannot remove the last member")
	}
	return c.SetMembers(kept)
}

// Pins returns a copy of the pin table: every stream currently routed away
// from its hash-home by a migration.
func (c *Cluster) Pins() map[int]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[int]string, len(c.pins))
	for s, a := range c.pins {
		out[s] = a
	}
	return out
}
