package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/membership"
	"github.com/alert-project/alert/internal/netserve"
)

// memberNode is a membership-enabled test node.
type memberNode struct {
	id    string
	url   string
	agent *membership.Agent
}

// startMemberNode stands up a node serving /v1/membership. The handler
// indirection exists because the agent's advertised address is the
// listener URL, which is only known after the listener starts.
func startMemberNode(t *testing.T, id string) *memberNode {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	var handler http.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	agent, err := membership.New(membership.Config{ID: id, Addr: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	handler = netserve.New(srv, netserve.Config{NodeID: id, Membership: agent})
	return &memberNode{id: id, url: ts.URL, agent: agent}
}

// connectAgents merges a converged all-alive view into every agent.
func connectAgents(nodes ...*memberNode) {
	entries := make([]membership.Entry, 0, len(nodes))
	for _, n := range nodes {
		entries = append(entries, membership.Entry{
			ID: n.id, Addr: n.url, Incarnation: 1, State: membership.StateAlive,
		})
	}
	v := membership.View{Version: 1, Entries: entries}
	for _, n := range nodes {
		n.agent.Merge(v)
	}
}

func sameMembers(t *testing.T, c *Cluster, want ...string) {
	t.Helper()
	got := c.Members()
	if !sameSet(got, want) {
		t.Fatalf("members %v, want %v", got, want)
	}
}

// TestSyncMembershipFollowsViews: the cluster's member set follows the
// merged membership view — deaths eject, discoveries join — with no
// AddMember/RemoveMember calls from the outside.
func TestSyncMembershipFollowsViews(t *testing.T) {
	n1, n2, n3 := startMemberNode(t, "n1"), startMemberNode(t, "n2"), startMemberNode(t, "n3")
	connectAgents(n1, n2, n3)

	cl, err := New([]string{n1.url, n2.url, n3.url}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.SyncMembership(context.Background()); err != nil {
		t.Fatalf("steady-state sync: %v", err)
	}
	sameMembers(t, cl, n1.url, n2.url, n3.url)

	// n3's lease expires: survivors' agents mark it dead; the next sync
	// must eject it and rebuild the ring.
	tomb := membership.View{Version: 2, Entries: []membership.Entry{{
		ID: n3.id, Addr: n3.url, Incarnation: 1, State: membership.StateDead,
	}}}
	n1.agent.Merge(tomb)
	n2.agent.Merge(tomb)
	if err := cl.SyncMembership(context.Background()); err != nil {
		t.Fatalf("post-death sync: %v", err)
	}
	sameMembers(t, cl, n1.url, n2.url)
	if owner := cl.Route(1); owner == n3.url {
		t.Fatal("ring still routes to the ejected member")
	}

	// A new node joins and is gossiped into just one survivor's view; the
	// merged view carries it to the client.
	n4 := startMemberNode(t, "n4")
	connectAgents(n4)
	n1.agent.Merge(membership.View{Version: 3, Entries: []membership.Entry{{
		ID: n4.id, Addr: n4.url, Incarnation: 1, State: membership.StateAlive,
	}}})
	if err := cl.SyncMembership(context.Background()); err != nil {
		t.Fatalf("post-join sync: %v", err)
	}
	sameMembers(t, cl, n1.url, n2.url, n4.url)
}

// TestSyncFlapDamping is the stall-proxy regression: a member whose
// probes time out but whose lease the cluster's own detector still honors
// (slow, not dead) must never be ejected — eject/re-add churn remaps
// streams and forks sessions, which is worse than routing to a slow node.
func TestSyncFlapDamping(t *testing.T) {
	n1, n2 := startMemberNode(t, "n1"), startMemberNode(t, "n2")

	// n3 sits behind a proxy that stalls every request past the probe
	// deadline: reachable by the cluster's heartbeats, dead to this
	// client's probes.
	n3backend, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n3backend.Close)
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
		http.Error(w, "stalled", http.StatusBadGateway)
	}))
	t.Cleanup(stall.Close)
	n3agent, err := membership.New(membership.Config{ID: "n3", Addr: stall.URL})
	if err != nil {
		t.Fatal(err)
	}
	n3 := &memberNode{id: "n3", url: stall.URL, agent: n3agent}
	connectAgents(n1, n2, n3)

	cl, err := New([]string{n1.url, n2.url, n3.url}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	changes := 0
	cl.setSyncOnChange(func([]string) { changes++ })

	// Far more rounds than any failure threshold: every probe of n3
	// fails, yet the merged view from n1/n2 says alive, so n3 stays.
	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		err := cl.SyncMembership(ctx)
		cancel()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sameMembers(t, cl, n1.url, n2.url, n3.url)
	}
	if changes != 0 {
		t.Fatalf("member set flapped %d times for a slow-but-alive node", changes)
	}
}

// TestSyncStaticNodeGrace: a member no view covers (a node running
// without membership) survives probe failures up to the flap-damping
// threshold, then is ejected on probe evidence alone.
func TestSyncStaticNodeGrace(t *testing.T) {
	n1 := startMemberNode(t, "n1")
	connectAgents(n1)
	// A static node that is simply gone: probes fail outright.
	deadURL := "http://127.0.0.1:1"

	cl, err := New([]string{n1.url, deadURL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.setFailThreshold(3)

	for round := 1; round <= 2; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		err := cl.SyncMembership(ctx)
		cancel()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sameMembers(t, cl, n1.url, deadURL) // within grace
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := cl.SyncMembership(ctx); err != nil {
		t.Fatalf("threshold round: %v", err)
	}
	sameMembers(t, cl, n1.url) // grace exhausted
}

// TestSyncKeepsSetWhenBlind: if no member serves a view the client keeps
// its routing state — an unreachable cluster is not a reason to dismantle
// the ring.
func TestSyncKeepsSetWhenBlind(t *testing.T) {
	// Plain nodes: /v1/membership answers 404 everywhere.
	a := startNode(t, "a", nil, 1)
	b := startNode(t, "b", nil, 1)
	cl, err := New([]string{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for round := 0; round < 5; round++ {
		if err := cl.SyncMembership(context.Background()); err == nil {
			t.Fatal("blind sync must report it reached no view")
		}
		sameMembers(t, cl, a, b)
	}
}

// TestStartSyncLoop: the background loop follows a death end-to-end and
// stops cleanly on cancel.
func TestStartSyncLoop(t *testing.T) {
	n1, n2, n3 := startMemberNode(t, "n1"), startMemberNode(t, "n2"), startMemberNode(t, "n3")
	connectAgents(n1, n2, n3)

	cl, err := New([]string{n1.url, n2.url, n3.url}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	changed := make(chan []string, 8)
	stop := cl.StartSync(ctx, SyncOptions{
		Interval: 10 * time.Millisecond,
		Seed:     42,
		OnChange: func(ms []string) { changed <- ms },
	})

	tomb := membership.View{Version: 2, Entries: []membership.Entry{{
		ID: n3.id, Addr: n3.url, Incarnation: 1, State: membership.StateDead,
	}}}
	n1.agent.Merge(tomb)
	n2.agent.Merge(tomb)

	select {
	case ms := <-changed:
		if !sameSet(ms, []string{n1.url, n2.url}) {
			t.Fatalf("sync loop converged to %v, want survivors only", ms)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync loop never ejected the dead member")
	}
	cancel()
	stop()
	sameMembers(t, cl, n1.url, n2.url)
}
