package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/membership"
)

// This file is the membership subscription: instead of an operator (or the
// load generator) calling AddMember/RemoveMember by hand, the Cluster
// polls its members' /v1/membership views, merges them, and rebuilds the
// ring from the result. The server-side failure detector — direct
// heartbeat leases with a suspicion window — is the authority on liveness;
// the client deliberately does not eject a member just because its own
// probe failed, which is what keeps a slow-but-alive node from flapping
// in and out of the ring (each eject/re-add remaps streams and forks
// sessions, so flapping is the most expensive kind of wrong).

// SyncOptions configure StartSync.
type SyncOptions struct {
	// Interval is the mean poll period; each round waits a seeded
	// equal-jitter fraction of it (between Interval/2 and Interval) so a
	// fleet of clients spreads its polls instead of arriving in phase.
	// 0 means 1s.
	Interval time.Duration
	// Seed seeds the jitter; clients with different seeds desynchronize.
	// 0 selects a fixed default seed.
	Seed int64
	// FailThreshold is how many consecutive failed sync rounds a member
	// with no membership view anywhere (a static node, or a cluster whose
	// agents are all unreachable) survives before it is ejected on probe
	// evidence alone. Members covered by a reachable view are never
	// ejected this way — the view's lease state decides. 0 means 3.
	FailThreshold int
	// OnChange, if set, is called after any sync round that changed the
	// member set, with the new sorted member list. Tests and operators
	// hook it to watch ring churn.
	OnChange func(members []string)
}

// syncState is the Cluster's membership-subscription soft state.
type syncState struct {
	mu    sync.Mutex
	fails map[string]int // member -> consecutive rounds without a usable reply
}

// SyncMembership runs one membership poll: fetch every current member's
// view, merge them (the membership lattice join, so any one up-to-date
// member is enough), and rebuild the member set:
//
//   - entries alive or suspect in the merged view are members — suspect
//     is the flap-damping window, a node the detector is unsure about
//     stays routable until the lease actually expires;
//   - entries dead in the merged view are ejected;
//   - current members unknown to every reachable view (static nodes) are
//     kept until failThreshold consecutive rounds of probe failure.
//
// If no member serves a view at all the set is left untouched and the
// first fetch error is returned: a client that cannot see the cluster
// must not dismantle its routing state over it.
func (c *Cluster) SyncMembership(ctx context.Context) error {
	members := c.Members()
	type result struct {
		addr string
		view membership.View
		err  error
	}
	results := make([]result, len(members))
	var wg sync.WaitGroup
	for i, addr := range members {
		cl, ok := c.Node(addr)
		if !ok {
			results[i] = result{addr: addr, err: fmt.Errorf("cluster: %s no longer a member", addr)}
			continue
		}
		wg.Add(1)
		go func(i int, addr string, cl *client.Client) {
			defer wg.Done()
			v, err := cl.Membership(ctx)
			results[i] = result{addr: addr, view: v, err: err}
		}(i, addr, cl)
	}
	wg.Wait()

	merged := membership.View{}
	reached := 0
	var firstErr error
	c.sync.mu.Lock()
	if c.sync.fails == nil {
		c.sync.fails = make(map[string]int)
	}
	for _, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: membership sync via %s: %w", r.addr, r.err)
			}
			c.sync.fails[r.addr]++
			continue
		}
		c.sync.fails[r.addr] = 0
		merged, _ = membership.MergeViews(merged, r.view)
		reached++
	}
	fails := make(map[string]int, len(c.sync.fails))
	for a, n := range c.sync.fails {
		fails[a] = n
	}
	c.sync.mu.Unlock()

	if reached == 0 {
		return firstErr
	}

	threshold := c.failThreshold()
	inView := make(map[string]bool, len(merged.Entries))
	routable := make(map[string]bool, len(merged.Entries))
	for _, e := range merged.Entries {
		inView[e.Addr] = true
		if e.State != membership.StateDead {
			routable[e.Addr] = true
		}
	}
	next := make([]string, 0, len(members))
	have := make(map[string]bool, len(members))
	for _, m := range members {
		have[m] = true
		switch {
		case inView[m]:
			if routable[m] {
				next = append(next, m)
			}
			// dead in the merged view: ejected.
		case fails[m] < threshold:
			next = append(next, m) // static node, still within its grace
		}
	}
	for _, e := range merged.Entries {
		if routable[e.Addr] && !have[e.Addr] {
			next = append(next, e.Addr) // discovered member (transitive join)
		}
	}
	if len(next) == 0 {
		// Every member dead or over threshold: refuse to empty the set —
		// something is more wrong than routing can fix, and an empty ring
		// just turns every request into a routing error.
		return fmt.Errorf("cluster: membership sync would remove every member; keeping current set")
	}
	if sameSet(next, members) {
		return nil
	}
	if err := c.SetMembers(next); err != nil {
		return err
	}
	c.gcSyncFails()
	if cb := c.syncOnChange(); cb != nil {
		cb(c.Members())
	}
	return nil
}

// StartSync polls SyncMembership on a jittered interval until ctx is
// cancelled. The returned function waits for the loop to exit (call it
// after cancelling, before Close, so no poll races the teardown). Round
// errors are swallowed: the next round retries, and a cluster that stays
// unreachable simply keeps its last known member set.
func (c *Cluster) StartSync(ctx context.Context, opts SyncOptions) (stop func()) {
	interval := opts.Interval
	if interval <= 0 {
		interval = time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	if opts.FailThreshold > 0 {
		c.setFailThreshold(opts.FailThreshold)
	}
	c.setSyncOnChange(opts.OnChange)
	rng := mathx.NewRand(seed)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			half := interval / 2
			wait := half + time.Duration(rng.Float64()*float64(half))
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
			_ = c.SyncMembership(ctx)
		}
	}()
	return func() { <-done }
}

func (c *Cluster) failThreshold() int {
	c.sync.mu.Lock()
	defer c.sync.mu.Unlock()
	if c.syncThreshold <= 0 {
		return 3
	}
	return c.syncThreshold
}

func (c *Cluster) setFailThreshold(n int) {
	c.sync.mu.Lock()
	defer c.sync.mu.Unlock()
	c.syncThreshold = n
}

func (c *Cluster) setSyncOnChange(cb func([]string)) {
	c.sync.mu.Lock()
	defer c.sync.mu.Unlock()
	c.syncChange = cb
}

func (c *Cluster) syncOnChange() func([]string) {
	c.sync.mu.Lock()
	defer c.sync.mu.Unlock()
	return c.syncChange
}

// gcSyncFails drops failure counters for departed members.
func (c *Cluster) gcSyncFails() {
	current := make(map[string]bool)
	for _, m := range c.Members() {
		current[m] = true
	}
	c.sync.mu.Lock()
	defer c.sync.mu.Unlock()
	for a := range c.sync.fails {
		if !current[a] {
			delete(c.sync.fails, a)
		}
	}
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}
