package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"testing"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/netserve"
	"github.com/alert-project/alert/internal/scenario"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// startNode stands up one cluster member: a real alert.Server behind a
// netserve front end on a loopback listener. Returns its base URL.
func startNode(t testing.TB, nodeID string, peers []string, shards int) string {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(netserve.New(srv, netserve.Config{NodeID: nodeID, Peers: peers}))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestClusterMigrationMatchesSolo is the acceptance differential: several
// streams replay a compiled scenario trace against a 3-node cluster, each
// stream migrating between nodes twice mid-trace, and every decision and
// estimate must be bit-identical to a single in-process controller serving
// the same trace. Run under -race this also exercises concurrent routed
// traffic + migration against shared cluster state.
func TestClusterMigrationMatchesSolo(t *testing.T) {
	addrs := []string{
		startNode(t, "a", nil, 2),
		startNode(t, "b", nil, 3),
		startNode(t, "c", nil, 1),
	}
	cl, err := New(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	solo, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()

	plat, models := alert.CPU1(), alert.ImageCandidates()
	prof, err := dnn.Profile(plat, models)
	if err != nil {
		t.Fatal(err)
	}
	slowest := 0.0
	for _, m := range models {
		if lat := m.RefLatency / plat.Speed(plat.PMax); lat > slowest {
			slowest = lat
		}
	}
	base := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 1.25 * slowest, AccuracyGoal: 0.92}

	sspec, err := scenario.ByName("bursty")
	if err != nil {
		t.Fatal(err)
	}
	const streams, inputs = 4, 60
	tr, err := scenario.Compile(sspec, plat, inputs, base.Deadline, 1)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			seed := int64(1 + s*7919)
			env := sim.NewEnv(prof, tr.Source(), seed+2)
			in := workload.NewStream(dnn.ImageClassification, inputs, seed+1)
			tracker := workload.NewDeadlineTracker(dnn.ImageClassification, base.Deadline, 0)
			cur := base
			for i := 0; ; i++ {
				input, ok := in.Next()
				if !ok {
					return
				}
				// Migrate mid-trace, twice, to the next member clockwise
				// from wherever the stream currently lives.
				if i == inputs/3 || i == 2*inputs/3 {
					from := cl.Route(s)
					to := nextMember(addrs, from)
					if err := cl.Migrate(ctx, s, from, to); err != nil {
						t.Errorf("stream %d step %d: migrate %s -> %s: %v", s, i, from, to, err)
						return
					}
					if got := cl.Route(s); got != to {
						t.Errorf("stream %d: routes to %s after migration to %s", s, got, to)
						return
					}
				}
				if next := tr.SpecFor(input.ID, base); next != cur {
					cur = next
					tracker.SetPerInput(cur.Deadline)
				}
				goal := tracker.GoalFor(input)
				dspec := cur
				dspec.Deadline = goal

				want, wantEst := solo.Decide(s, dspec)
				got, gotEst, err := cl.Decide(ctx, s, dspec)
				if err != nil {
					t.Errorf("stream %d step %d: %v", s, i, err)
					return
				}
				if got != want || gotEst != wantEst {
					t.Errorf("stream %d step %d on %s: cluster (%+v, %+v) != solo (%+v, %+v)",
						s, i, cl.Route(s), got, gotEst, want, wantEst)
					return
				}
				out := env.Step(sim.Decision{
					Model: want.Model, Cap: want.Cap,
					PlannedStop: want.PlannedStop, Overhead: want.Overhead,
				}, input, goal, cur.Deadline)
				tracker.Observe(input, out.Latency)
				fb := alert.Feedback{
					Decision:       want,
					Latency:        out.Latency,
					CompletedStage: out.Stage,
					IdlePowerW:     out.IdlePower,
				}
				solo.Observe(s, fb)
				if err := cl.Observe(ctx, s, fb); err != nil {
					t.Errorf("stream %d step %d: observe: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	// Every stream was migrated off its hash-home at least once and the
	// sessions ended up where the pins say: the cluster-wide session count
	// equals the stream count (no forked or orphaned sessions anywhere).
	total := 0
	for _, addr := range addrs {
		node, _ := cl.Node(addr)
		stats, err := node.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		total += stats.Streams
	}
	if total != streams {
		t.Errorf("cluster-wide sessions = %d, want %d", total, streams)
	}
	for s := 0; s < streams; s++ {
		node, _ := cl.Node(cl.Route(s))
		snap, err := node.ExportStream(ctx, s)
		if err != nil {
			t.Errorf("stream %d not on its routed node: %v", s, err)
			continue
		}
		if snap.Decisions != inputs {
			t.Errorf("stream %d: %d decisions recorded, want %d", s, snap.Decisions, inputs)
		}
	}
}

// nextMember returns the member after addr, wrapping.
func nextMember(addrs []string, addr string) string {
	for i, a := range addrs {
		if a == addr {
			return addrs[(i+1)%len(addrs)]
		}
	}
	return addrs[0]
}

// TestRefreshDiscoversPeers: a cluster seeded with one address unions in
// the peers that node advertises in /v1/stats.
func TestRefreshDiscoversPeers(t *testing.T) {
	b := startNode(t, "b", nil, 1)
	c := startNode(t, "c", nil, 1)
	a := startNode(t, "a", []string{b, c}, 1)

	cl, err := New([]string{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if n := len(cl.Members()); n != 1 {
		t.Fatalf("seed members = %d, want 1", n)
	}
	if err := cl.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := cl.Members()
	if len(got) != 3 {
		t.Fatalf("members after refresh = %v, want 3", got)
	}
	for _, want := range []string{a, b, c} {
		if _, ok := cl.Node(want); !ok {
			t.Errorf("member %s missing after refresh", want)
		}
	}
}

// TestHealthReportsDeadMembers: probes return per-member errors, healthy
// members nil, unreachable members non-nil — and probing never errors the
// call itself.
func TestHealthReportsDeadMembers(t *testing.T) {
	live := startNode(t, "a", nil, 1)
	dead := "http://127.0.0.1:1" // reserved port: connection refused fast

	cl, err := New([]string{live, dead}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	health := cl.Health(context.Background())
	if len(health) != 2 {
		t.Fatalf("health has %d entries, want 2", len(health))
	}
	if health[live] != nil {
		t.Errorf("live member unhealthy: %v", health[live])
	}
	if health[dead] == nil {
		t.Error("dead member reported healthy")
	}
}

// TestMigrateEdgeCases: no-session migrations pin and succeed (idempotent
// plans), same-node migrations are no-ops, and unknown members fail fast.
func TestMigrateEdgeCases(t *testing.T) {
	a := startNode(t, "a", nil, 1)
	b := startNode(t, "b", nil, 1)
	cl, err := New([]string{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Stream 42 has no session anywhere: migrating it ships nothing but
	// still pins the route.
	if err := cl.Migrate(ctx, 42, a, b); err != nil {
		t.Fatalf("no-session migrate: %v", err)
	}
	if got := cl.Route(42); got != b {
		t.Errorf("route after no-session migrate = %s, want %s", got, b)
	}

	if err := cl.Migrate(ctx, 42, b, b); err != nil {
		t.Errorf("same-node migrate: %v", err)
	}
	if err := cl.Migrate(ctx, 42, "http://nowhere:1", b); err == nil {
		t.Error("unknown source accepted")
	}
	if err := cl.Migrate(ctx, 42, b, "http://nowhere:1"); err == nil {
		t.Error("unknown target accepted")
	}

	// A real migration back to the stream's hash-home drops the pin.
	if _, _, err := cl.Decide(ctx, 42, alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}); err != nil {
		t.Fatal(err)
	}
	home := cl.ring.Owner(42)
	other := nextMember([]string{a, b}, home)
	if err := cl.Migrate(ctx, 42, cl.Route(42), home); err != nil {
		t.Fatal(err)
	}
	if pins := cl.Pins(); len(pins) != 0 {
		t.Errorf("pin onto hash-home retained: %v", pins)
	}
	if err := cl.Migrate(ctx, 42, home, other); err != nil {
		t.Fatal(err)
	}
	if pins := cl.Pins(); pins[42] != other {
		t.Errorf("pins = %v, want stream 42 on %s", pins, other)
	}
}

// TestSetMembersDropsOrphanedPins: removing the pinned-to member drops the
// pin so the stream falls back to its hash-home instead of routing into a
// closed client.
func TestSetMembersDropsOrphanedPins(t *testing.T) {
	a := startNode(t, "a", nil, 1)
	b := startNode(t, "b", nil, 1)
	cl, err := New([]string{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Migrate(context.Background(), 7, a, b); err != nil {
		t.Fatal(err)
	}
	wantPinned := cl.Route(7) == b && cl.ring.Owner(7) != b
	if err := cl.SetMembers([]string{a}); err != nil {
		t.Fatal(err)
	}
	if got := cl.Route(7); got != a {
		t.Errorf("route after member removal = %s, want %s", got, a)
	}
	if wantPinned && len(cl.Pins()) != 0 {
		t.Errorf("orphaned pin retained: %v", cl.Pins())
	}
}

// TestConcurrentMigrateSameStream pins down the in-flight guard: two
// Migrates for the same stream overlap deterministically (the first one's
// import is stalled behind a proxy), exactly one wins, the loser gets
// ErrMigrationInFlight immediately, and the stream never forks — its one
// session ends up on exactly one node with every decision intact. Run under
// -race this also exercises the guard's locking against routed traffic.
func TestConcurrentMigrateSameStream(t *testing.T) {
	a := startNode(t, "a", nil, 1)
	b := startNode(t, "b", nil, 1)
	c := startNode(t, "c", nil, 1)

	// slowB fronts b, stalling the first import (PUT /v1/streams/{id})
	// until released so the overlap window is a certainty, not a sleep.
	bURL, err := url.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(bURL)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slowB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			once.Do(func() { close(entered) })
			<-release
		}
		proxy.ServeHTTP(w, r)
	}))
	defer slowB.Close()

	cl, err := New([]string{a, slowB.URL, c}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}

	// Pick a stream whose hash-home is NOT the stalled node, so the winner's
	// migration imports through the stall while the loser races it.
	stream := -1
	for s := 0; s < 64; s++ {
		if cl.Route(s) != slowB.URL {
			stream = s
			break
		}
	}
	if stream < 0 {
		t.Fatal("no stream routes away from the stalled member")
	}
	home := cl.Route(stream)
	other := a
	if home == a {
		other = c
	}
	if _, _, err := cl.Decide(ctx, stream, spec); err != nil {
		t.Fatal(err)
	}

	winner := make(chan error, 1)
	go func() { winner <- cl.Migrate(ctx, stream, home, slowB.URL) }()
	<-entered // the winner's import is now in flight

	// The concurrent second Migrate must lose fast, without touching the
	// session mid-ship.
	if err := cl.Migrate(ctx, stream, home, other); !errors.Is(err, ErrMigrationInFlight) {
		t.Fatalf("concurrent migrate: err = %v, want ErrMigrationInFlight", err)
	}
	close(release)
	if err := <-winner; err != nil {
		t.Fatalf("winning migrate: %v", err)
	}

	// No fork: the session lives exactly once, behind the stalled node, with
	// its decision intact, and routing follows the winner.
	if got := cl.Route(stream); got != slowB.URL {
		t.Errorf("route = %s, want the winning target %s", got, slowB.URL)
	}
	holders := 0
	for _, addr := range []string{a, slowB.URL, c} {
		node, _ := cl.Node(addr)
		ids, err := node.Streams(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if id == stream {
				holders++
			}
		}
	}
	if holders != 1 {
		t.Fatalf("stream %d live on %d nodes, want exactly 1", stream, holders)
	}
	node, _ := cl.Node(slowB.URL)
	snap, err := node.ExportStream(ctx, stream)
	if err != nil {
		t.Fatalf("session not on the winning target: %v", err)
	}
	if snap.Decisions != 1 {
		t.Errorf("session holds %d decisions after the race, want 1", snap.Decisions)
	}

	// Hammer phase: many goroutines race the same migration plan. The guard
	// serializes them into one winner plus idempotent no-session pins —
	// every error is nil or ErrMigrationInFlight, never a forked session.
	if err := node.ImportStream(ctx, stream, snap); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cl.Migrate(ctx, stream, slowB.URL, other)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrMigrationInFlight) {
			t.Errorf("hammer migrate %d: %v", i, err)
		}
	}
	holders = 0
	for _, addr := range []string{a, slowB.URL, c} {
		n, _ := cl.Node(addr)
		ids, err := n.Streams(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if id == stream {
				holders++
			}
		}
	}
	if holders != 1 {
		t.Fatalf("after hammer: stream %d live on %d nodes, want exactly 1", stream, holders)
	}
	if got := cl.Route(stream); got != other {
		t.Errorf("after hammer: route = %s, want %s", got, other)
	}
}
