package client

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/netserve"
)

// holdRecovery is a minimal netserve.Recovery whose restoring hold clears
// after a configured number of rejections — the shape of a failover
// restore finishing while a client is backing off.
type holdRecovery struct {
	mu     sync.Mutex
	stream int
	holds  int // remaining rejections before the hold clears
	seen   int // how many Restoring(stream)==true answers were served
}

func (h *holdRecovery) Restoring(stream int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if stream != h.stream || h.holds == 0 {
		return false
	}
	h.holds--
	h.seen++
	return true
}

func (h *holdRecovery) StoreReplica(int, string, int64, alert.SessionSnapshot) {}
func (h *holdRecovery) Replicas() []netserve.ReplicaInfo                       { return nil }
func (h *holdRecovery) HandleClaim(int, string, string, int64) (bool, int64)   { return false, -1 }
func (h *holdRecovery) AnnounceImport(int, int64) bool                         { return false }

// TestRestoring503SurfacesRetryAfter: a decide for a mid-restore stream is
// shed with 503 and the server's Retry-After hint, surfaced as
// *OverloadError — the same contract as the admission 429s.
func TestRestoring503SurfacesRetryAfter(t *testing.T) {
	rec := &holdRecovery{stream: 5, holds: 1000}
	c, _ := startFrontEnd(t, netserve.Config{RetryAfter: 60 * time.Millisecond, Recovery: rec})

	_, _, err := c.Decide(context.Background(), 5, testSpec())
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("mid-restore decide: got %v, want *OverloadError", err)
	}
	if oe.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", oe.StatusCode)
	}
	if oe.RetryAfter != 60*time.Millisecond {
		t.Fatalf("retry-after %s, want 60ms", oe.RetryAfter)
	}
	// Other streams are not held.
	if _, _, err := c.Decide(context.Background(), 6, testSpec()); err != nil {
		t.Fatalf("unheld stream rejected: %v", err)
	}
}

// TestRetryHonorsRestoring503Hint: the client's very first retry after a
// restoring 503 waits the server's hint (jitter keeps at least half), so
// one allowed retry is enough to ride out a hold that clears meanwhile.
func TestRetryHonorsRestoring503Hint(t *testing.T) {
	const hint = 60 * time.Millisecond
	rec := &holdRecovery{stream: 9, holds: 1} // one rejection, then clear
	c, _ := startFrontEnd(t, netserve.Config{RetryAfter: hint, Recovery: rec})

	retry, err := New(c.base, Options{MaxRetries: 1, BackoffSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer retry.Close()

	start := time.Now()
	if _, _, err := retry.Decide(context.Background(), 9, testSpec()); err != nil {
		t.Fatalf("decide through a clearing restore hold failed: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < hint/2 {
		t.Fatalf("first retry fired after %s, before the jittered hint floor %s", elapsed, hint/2)
	}
	rec.mu.Lock()
	rejections := rec.seen
	rec.mu.Unlock()
	if rejections != 1 {
		t.Fatalf("served %d restoring rejections, want exactly 1 (success on first retry)", rejections)
	}
}
