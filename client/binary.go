package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/binwire"
)

// BinaryTransport speaks the binwire protocol over a small pool of
// persistent TCP connections. Requests are pipelined: each is stamped
// with a connection-unique id and its caller parks on a channel until the
// reader goroutine routes the matching response frame back, so any number
// of goroutines share a connection without head-of-line blocking in the
// client. Server rejections surface as the same *OverloadError /
// *APIError values the HTTP path produces — the Client's retry loop and
// the cluster router cannot tell the transports apart by behavior, only
// by speed.
//
// A Client uses it automatically (Options.BinaryAddr or PreferBinary);
// it is exported for callers that want the raw transport without the
// retry loop.
type BinaryTransport struct {
	addr string
	next atomic.Uint32

	mu     sync.Mutex
	conns  []*binConn
	closed bool
}

// binPoolSize is the persistent connections per transport. Pipelining
// makes one connection enough to saturate a small host — and fewer
// connections mean better write coalescing and fewer reader wakeups — so
// the pool grows with cores only to keep reader goroutines from becoming
// the bottleneck on big machines.
var binPoolSize = func() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return n
}()

// NewBinaryTransport returns a transport for the given host:port. Dialing
// is lazy — a server that is down fails per request, like HTTP.
func NewBinaryTransport(addr string) *BinaryTransport {
	return &BinaryTransport{addr: addr, conns: make([]*binConn, binPoolSize)}
}

// Close tears down every connection; in-flight requests fail. The
// transport must not be used afterwards.
func (t *BinaryTransport) Close() {
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = make([]*binConn, binPoolSize)
	t.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.fail(errors.New("client: binary transport closed"))
		}
	}
}

// conn returns a live pooled connection, dialing a replacement for a dead
// slot. Slots rotate round-robin so concurrent streams spread across the
// pool.
func (t *BinaryTransport) conn() (*binConn, error) {
	slot := int(t.next.Add(1)) % binPoolSize
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("client: binary transport closed")
	}
	cc := t.conns[slot]
	if cc != nil && !cc.broken() {
		t.mu.Unlock()
		return cc, nil
	}
	t.mu.Unlock()
	// Dial outside the lock; only the winner is installed.
	nc, err := net.Dial("tcp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial binary %s: %w", t.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	fresh := &binConn{
		conn:    nc,
		pending: make(map[uint64]chan binReply),
		wwake:   make(chan struct{}, 1),
		wstop:   make(chan struct{}),
	}
	go fresh.readLoop()
	go fresh.writeLoop()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		fresh.fail(errors.New("client: binary transport closed"))
		return nil, errors.New("client: binary transport closed")
	}
	if cur := t.conns[slot]; cur != nil && !cur.broken() {
		t.mu.Unlock()
		fresh.fail(errors.New("client: duplicate dial discarded"))
		return cur, nil
	}
	t.conns[slot] = fresh
	t.mu.Unlock()
	return fresh, nil
}

// binConn is one pipelined connection: requesters append frames to a
// shared queue and nudge a dedicated writer goroutine, which swaps the
// whole queue out and writes it in one syscall (group commit — every
// queued request rides the same write), while a reader goroutine routes
// response frames to waiters by request id.
type binConn struct {
	conn   net.Conn
	nextID atomic.Uint64

	wmu   sync.Mutex
	wbuf  []byte        // frames queued for the writer
	wwake chan struct{} // capacity 1: nudges the writer

	mu      sync.Mutex
	pending map[uint64]chan binReply
	dead    error
	wstop   chan struct{} // closed by fail: stops the writer
}

// binReply hands a response frame to its waiter. buf is the pooled buffer
// Body aliases; the waiter returns it with binwire.PutBuf after decoding.
type binReply struct {
	frame binwire.Frame
	buf   *[]byte
}

func (cc *binConn) broken() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead != nil
}

// fail kills the connection: every current and future waiter gets err.
func (cc *binConn) fail(err error) {
	cc.mu.Lock()
	if cc.dead != nil {
		cc.mu.Unlock()
		return
	}
	cc.dead = err
	pending := cc.pending
	cc.pending = nil
	close(cc.wstop)
	cc.mu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		close(ch) // a closed channel signals "connection died, see dead"
	}
}

func (cc *binConn) readLoop() {
	// Buffered: a burst of pipelined responses drains in one read syscall.
	rd := binwire.NewReader(bufio.NewReaderSize(cc.conn, 64<<10))
	for {
		f, err := rd.Next()
		if err != nil {
			cc.fail(fmt.Errorf("client: binary connection lost: %w", err))
			return
		}
		if f.Version != binwire.Version {
			cc.fail(fmt.Errorf("client: server speaks binwire version %d, want %d", f.Version, binwire.Version))
			return
		}
		// The frame body aliases the reader's buffer; copy it into a
		// pooled buffer that travels to the waiter.
		bp := binwire.GetBuf()
		*bp = append((*bp)[:0], f.Body...)
		f.Body = *bp
		cc.mu.Lock()
		ch, ok := cc.pending[f.ID]
		if ok {
			delete(cc.pending, f.ID)
		}
		cc.mu.Unlock()
		if !ok {
			// The waiter gave up (context cancellation); drop the late
			// response.
			binwire.PutBuf(bp)
			continue
		}
		ch <- binReply{frame: f, buf: bp}
	}
}

// writeLoop drains the frame queue: on each nudge it swaps the queue out
// wholesale and writes it with one syscall, so every request queued while
// a write was in flight (or while this goroutine waited for the
// scheduler) shares that syscall instead of paying its own. On write
// failure it kills the connection; waiters learn through their closed
// channels.
func (cc *binConn) writeLoop() {
	var flush []byte
	for {
		select {
		case <-cc.wwake:
		case <-cc.wstop:
			return
		}
		// The nudge readies this goroutine into the scheduler's runnext
		// slot — running now would write the nudger's single frame alone.
		// Yielding once lets every already-runnable requester append its
		// frame first, so the swap below drains a full batch per syscall.
		runtime.Gosched()
		cc.wmu.Lock()
		cc.wbuf, flush = flush[:0], cc.wbuf
		cc.wmu.Unlock()
		if len(flush) == 0 {
			continue
		}
		if _, err := cc.conn.Write(flush); err != nil {
			cc.fail(fmt.Errorf("client: binary write: %w", err))
			return
		}
	}
}

// send queues one encoded frame and nudges the writer.
func (cc *binConn) send(enc func(dst []byte, id uint64) []byte, id uint64) {
	cc.wmu.Lock()
	cc.wbuf = enc(cc.wbuf, id)
	cc.wmu.Unlock()
	select {
	case cc.wwake <- struct{}{}:
	default:
	}
}

// roundTrip sends one request frame (encoded by enc, stamped with a fresh
// id) and parks until the matching response arrives, the context ends, or
// the connection dies.
func (cc *binConn) roundTrip(ctx context.Context, enc func(dst []byte, id uint64) []byte) (binReply, error) {
	id := cc.nextID.Add(1)
	ch := make(chan binReply, 1)
	cc.mu.Lock()
	if cc.dead != nil {
		err := cc.dead
		cc.mu.Unlock()
		return binReply{}, err
	}
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.send(enc, id)

	select {
	case r, ok := <-ch:
		if !ok {
			cc.mu.Lock()
			err := cc.dead
			cc.mu.Unlock()
			return binReply{}, err
		}
		return r, nil
	case <-ctx.Done():
		cc.forget(id)
		return binReply{}, ctx.Err()
	}
}

// forget abandons a pending id (the response, if it ever comes, is
// dropped by the read loop).
func (cc *binConn) forget(id uint64) {
	cc.mu.Lock()
	if cc.pending != nil {
		delete(cc.pending, id)
	}
	cc.mu.Unlock()
}

// binRetryAfter converts an error frame's retry_after_ms hint to a
// duration, with the same hygiene retryAfterOf applies to the HTTP hint:
// missing, non-positive, or absurdly large (over an hour) hints count as
// no hint at all, so a garbled server cannot stall the retry loop — the
// client substitutes its own capped exponential schedule.
func binRetryAfter(ms int64) time.Duration {
	if ms <= 0 || ms > 3_600_000 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// binError maps an error frame to the same error values the HTTP path
// produces for the equivalent status.
func binError(body []byte) error {
	code, ms, msg, err := binwire.DecodeError(body)
	if err != nil {
		return fmt.Errorf("client: malformed error frame: %w", err)
	}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		return &OverloadError{StatusCode: int(code), Message: msg, RetryAfter: binRetryAfter(ms)}
	}
	return &APIError{StatusCode: int(code), Message: msg}
}

func unexpectedFrame(t binwire.MsgType) error {
	return fmt.Errorf("client: unexpected response frame type %d", byte(t))
}

// Decide requests one decision over the binary transport, returning the
// serving node's id alongside (the binary twin of Client.DecideServed).
func (t *BinaryTransport) Decide(ctx context.Context, stream int, spec alert.Spec) (alert.Decision, alert.Estimate, string, error) {
	cc, err := t.conn()
	if err != nil {
		return alert.Decision{}, alert.Estimate{}, "", err
	}
	r, err := cc.roundTrip(ctx, func(dst []byte, id uint64) []byte {
		return binwire.AppendDecide(dst, id, stream, spec)
	})
	if err != nil {
		return alert.Decision{}, alert.Estimate{}, "", err
	}
	defer binwire.PutBuf(r.buf)
	switch r.frame.Type {
	case binwire.MsgDecideResp:
		d, e, node, err := binwire.DecodeDecideResp(r.frame.Body)
		if err != nil {
			return alert.Decision{}, alert.Estimate{}, "", fmt.Errorf("client: %w", err)
		}
		return d, e, node, nil
	case binwire.MsgError:
		return alert.Decision{}, alert.Estimate{}, "", binError(r.frame.Body)
	default:
		return alert.Decision{}, alert.Estimate{}, "", unexpectedFrame(r.frame.Type)
	}
}

// Observe reports a measurement. Like the HTTP path, the server enqueues
// the update before acking, so a subsequent Decide on the stream sees it.
func (t *BinaryTransport) Observe(ctx context.Context, stream int, fb alert.Feedback) error {
	cc, err := t.conn()
	if err != nil {
		return err
	}
	r, err := cc.roundTrip(ctx, func(dst []byte, id uint64) []byte {
		return binwire.AppendObserve(dst, id, stream, fb)
	})
	if err != nil {
		return err
	}
	defer binwire.PutBuf(r.buf)
	switch r.frame.Type {
	case binwire.MsgObserveResp:
		return nil
	case binwire.MsgError:
		return binError(r.frame.Body)
	default:
		return unexpectedFrame(r.frame.Type)
	}
}

// DecideBatch dispatches the whole batch in one frame; results come back
// in request order.
func (t *BinaryTransport) DecideBatch(ctx context.Context, reqs []alert.BatchRequest) ([]alert.BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	cc, err := t.conn()
	if err != nil {
		return nil, err
	}
	r, err := cc.roundTrip(ctx, func(dst []byte, id uint64) []byte {
		return binwire.AppendBatch(dst, id, reqs)
	})
	if err != nil {
		return nil, err
	}
	defer binwire.PutBuf(r.buf)
	switch r.frame.Type {
	case binwire.MsgBatchResp:
		res, err := binwire.DecodeBatchResp(r.frame.Body, make([]alert.BatchResult, 0, len(reqs)))
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		if len(res) != len(reqs) {
			return nil, fmt.Errorf("client: batch returned %d results for %d requests", len(res), len(reqs))
		}
		return res, nil
	case binwire.MsgError:
		return nil, binError(r.frame.Body)
	default:
		return nil, unexpectedFrame(r.frame.Type)
	}
}

// EvictStream releases the stream's server-side session.
func (t *BinaryTransport) EvictStream(ctx context.Context, stream int) error {
	cc, err := t.conn()
	if err != nil {
		return err
	}
	r, err := cc.roundTrip(ctx, func(dst []byte, id uint64) []byte {
		return binwire.AppendStreamReq(dst, binwire.MsgEvict, id, stream)
	})
	if err != nil {
		return err
	}
	defer binwire.PutBuf(r.buf)
	switch r.frame.Type {
	case binwire.MsgEvictResp:
		return nil
	case binwire.MsgError:
		return binError(r.frame.Body)
	default:
		return unexpectedFrame(r.frame.Type)
	}
}

// snapshotOp runs export or checkpoint and decodes the returned session.
func (t *BinaryTransport) snapshotOp(ctx context.Context, op binwire.MsgType, stream int) (alert.SessionSnapshot, error) {
	var snap alert.SessionSnapshot
	cc, err := t.conn()
	if err != nil {
		return snap, err
	}
	r, err := cc.roundTrip(ctx, func(dst []byte, id uint64) []byte {
		return binwire.AppendStreamReq(dst, op, id, stream)
	})
	if err != nil {
		return snap, err
	}
	defer binwire.PutBuf(r.buf)
	switch r.frame.Type {
	case binwire.MsgSnapshotResp:
		_, blob, err := binwire.DecodeSnapshot(r.frame.Type, r.frame.Body)
		if err != nil {
			return snap, fmt.Errorf("client: %w", err)
		}
		if err := snap.UnmarshalBinary(blob); err != nil {
			return snap, fmt.Errorf("client: %w", err)
		}
		return snap, nil
	case binwire.MsgError:
		return snap, binError(r.frame.Body)
	default:
		return snap, unexpectedFrame(r.frame.Type)
	}
}

// ExportStream drains, snapshots, and removes the stream's session.
func (t *BinaryTransport) ExportStream(ctx context.Context, stream int) (alert.SessionSnapshot, error) {
	return t.snapshotOp(ctx, binwire.MsgExport, stream)
}

// CheckpointStream snapshots the stream's session without removing it.
func (t *BinaryTransport) CheckpointStream(ctx context.Context, stream int) (alert.SessionSnapshot, error) {
	return t.snapshotOp(ctx, binwire.MsgCheckpoint, stream)
}

// ImportStream restores an exported session under the given stream id.
func (t *BinaryTransport) ImportStream(ctx context.Context, stream int, snap alert.SessionSnapshot) error {
	blob, err := snap.MarshalBinary()
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	cc, err := t.conn()
	if err != nil {
		return err
	}
	r, err := cc.roundTrip(ctx, func(dst []byte, id uint64) []byte {
		return binwire.AppendSnapshot(dst, binwire.MsgImport, id, stream, blob)
	})
	if err != nil {
		return err
	}
	defer binwire.PutBuf(r.buf)
	switch r.frame.Type {
	case binwire.MsgImportResp:
		return nil
	case binwire.MsgError:
		return binError(r.frame.Body)
	default:
		return unexpectedFrame(r.frame.Type)
	}
}
