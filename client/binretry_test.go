package client

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"github.com/alert-project/alert/internal/binwire"
)

// TestBinRetryAfterEdgeCases is the binary twin of
// TestRetryAfterOfEdgeCases: the retry_after_ms hint in an error frame
// goes through the same hygiene as the HTTP hint — missing, non-positive,
// and multi-hour values all degrade to "no hint" so the client falls back
// to its own capped exponential schedule, never sleeping negative or
// absurd durations on a garbled server's say-so.
func TestBinRetryAfterEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		ms   int64
		want time.Duration
	}{
		{name: "zero means no hint", ms: 0, want: 0},
		{name: "negative means no hint", ms: -250, want: 0},
		{name: "one millisecond", ms: 1, want: time.Millisecond},
		{name: "typical hint", ms: 50, want: 50 * time.Millisecond},
		{name: "at the one-hour cap", ms: 3_600_000, want: time.Hour},
		{name: "just over the cap degrades to no hint", ms: 3_600_001, want: 0},
		{name: "absurdly large degrades to no hint", ms: 1 << 50, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := binRetryAfter(tc.ms); got != tc.want {
				t.Errorf("binRetryAfter(%d) = %v, want %v", tc.ms, got, tc.want)
			}
		})
	}
}

// TestBinErrorMapping checks error frames decode to the same error values
// the HTTP path produces for the equivalent status, so the retry loop and
// the cluster router treat both transports identically.
func TestBinErrorMapping(t *testing.T) {
	frame := func(code uint16, ms int64, msg string) []byte {
		raw := binwire.AppendError(nil, 1, code, ms, msg)
		f, _, err := binwire.ParseFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		return f.Body
	}

	err := binError(frame(binwire.CodeOverloaded, 40, "admission queue full"))
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.StatusCode != http.StatusTooManyRequests || oe.RetryAfter != 40*time.Millisecond {
		t.Fatalf("429 frame mapped to %#v", err)
	}
	err = binError(frame(binwire.CodeUnavailable, 0, "server draining"))
	if !errors.As(err, &oe) || oe.StatusCode != http.StatusServiceUnavailable || oe.RetryAfter != 0 {
		t.Fatalf("503 frame mapped to %#v", err)
	}
	err = binError(frame(binwire.CodeNotFound, 0, "stream has no session"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("404 frame mapped to %#v", err)
	}
}
