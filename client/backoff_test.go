package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/alert-project/alert/internal/netserve"
)

// rejectingServer answers 429 (with a scripted Retry-After header) until
// `serveAfter` requests have arrived, then succeeds, recording arrival
// times so tests can inspect the client's actual backoff.
type rejectingServer struct {
	mu         sync.Mutex
	arrivals   []time.Time
	serveAfter int
	retryAfter string // Retry-After header value; empty omits the header
}

func (s *rejectingServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.arrivals = append(s.arrivals, time.Now())
	n := len(s.arrivals)
	s.mu.Unlock()
	if n <= s.serveAfter {
		if s.retryAfter != "" {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overload"}`)) // no retry_after_ms: header only
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"count":0,"ids":[]}`))
}

func (s *rejectingServer) gaps() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Duration, 0, len(s.arrivals)-1)
	for i := 1; i < len(s.arrivals); i++ {
		out = append(out, s.arrivals[i].Sub(s.arrivals[i-1]))
	}
	return out
}

// TestBackoffToleratesGarbledRetryAfter: a 429 whose Retry-After header is
// unparseable must NOT be retried immediately (the old behavior treated it
// as 0); the client falls back to its own exponential schedule.
func TestBackoffToleratesGarbledRetryAfter(t *testing.T) {
	for _, header := range []string{"", "soon", "-5", "NaN", "1e99"} {
		srv := &rejectingServer{serveAfter: 3, retryAfter: header}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		c, err := New(ts.URL, Options{MaxRetries: 10, BackoffBase: 20 * time.Millisecond, BackoffSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		if _, err := c.Streams(context.Background()); err != nil {
			t.Fatalf("header %q: request failed through transient overload: %v", header, err)
		}
		for i, gap := range srv.gaps() {
			// Equal jitter keeps every wait >= half the scheduled one; the
			// schedule starts at BackoffBase and doubles.
			min := 20 * time.Millisecond / 2 << i
			if gap < min {
				t.Errorf("header %q: retry %d came after %s, want >= %s (immediate retry on a garbled hint?)",
					header, i+1, gap, min)
			}
		}
	}
}

// TestBackoffHonorsRetryAfterHeader: a parseable whole-second header is
// honored (scaled down only by jitter, never to zero).
func TestBackoffHonorsRetryAfterHeader(t *testing.T) {
	srv := &rejectingServer{serveAfter: 1, retryAfter: "1"}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := New(ts.URL, Options{MaxRetries: 2, BackoffSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Streams(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Errorf("retry after %s, want >= 500ms (half the 1s hint)", elapsed)
	}
}

// TestBackoffCapBounds: the cap bounds hinted and scheduled waits alike, so
// an absurd server hint cannot stall the client for minutes.
func TestBackoffCapBounds(t *testing.T) {
	srv := &rejectingServer{serveAfter: 2, retryAfter: "3000"}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := New(ts.URL, Options{MaxRetries: 5, BackoffCap: 50 * time.Millisecond, BackoffSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Streams(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("two capped retries took %s, want well under 2s", elapsed)
	}
}

// TestJitterDeterministic: the jitter stream is a pure function of the
// seed, so retry timing is reproducible in tests and distinct across
// differently-seeded clients.
func TestJitterDeterministic(t *testing.T) {
	mk := func(seed int64) *Client {
		c, err := New("http://127.0.0.1:1", Options{BackoffSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b, other := mk(42), mk(42), mk(43)
	same, diff := true, true
	for i := 0; i < 16; i++ {
		wa, wb, wo := a.jitter(time.Second), b.jitter(time.Second), other.jitter(time.Second)
		if wa != wb {
			same = false
		}
		if wa != wo {
			diff = false
		}
		if wa < 500*time.Millisecond || wa > time.Second {
			t.Fatalf("jitter(1s) = %s, want within [500ms, 1s]", wa)
		}
	}
	if !same {
		t.Error("equal seeds produced different jitter streams")
	}
	if diff {
		t.Error("different seeds produced identical jitter streams")
	}
}

// TestRetryAfterOf pins the hint parser: millisecond body field first,
// then delay-seconds (integer or fractional), then HTTP-date; everything
// garbled, negative, or absurd is "no hint", never zero-wait.
func TestRetryAfterOf(t *testing.T) {
	resp := func(header string) *http.Response {
		r := &http.Response{Header: http.Header{}}
		if header != "" {
			r.Header.Set("Retry-After", header)
		}
		return r
	}
	if got := retryAfterOf(resp(""), netserve.ErrorResponse{RetryAfterMs: 250}); got != 250*time.Millisecond {
		t.Errorf("body hint: %s, want 250ms", got)
	}
	if got := retryAfterOf(resp("2"), netserve.ErrorResponse{}); got != 2*time.Second {
		t.Errorf("integer seconds: %s, want 2s", got)
	}
	if got := retryAfterOf(resp("0.5"), netserve.ErrorResponse{}); got != 500*time.Millisecond {
		t.Errorf("fractional seconds: %s, want 500ms", got)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if got := retryAfterOf(resp(future), netserve.ErrorResponse{}); got <= 80*time.Second || got > 90*time.Second {
		t.Errorf("http-date: %s, want ~90s", got)
	}
	for _, bad := range []string{"", "soon", "-1", "NaN", "1e99", "0"} {
		if got := retryAfterOf(resp(bad), netserve.ErrorResponse{}); got != 0 {
			t.Errorf("garbled %q: %s, want 0 (no hint)", bad, got)
		}
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := retryAfterOf(resp(past), netserve.ErrorResponse{}); got != 0 {
		t.Errorf("past http-date: %s, want 0", got)
	}
}
