// Package client is the typed Go client for the ALERT network serving
// front end (internal/netserve, hosted by cmd/alertserve). It speaks the
// /v1 HTTP/JSON API with connection reuse — one pooled http.Transport,
// keep-alive across requests — so the steady-state cost per decision is
// one loopback round trip, and a DecideBatch amortizes even that across
// the whole batch.
//
//	c, err := client.New("http://127.0.0.1:8372", client.Options{})
//	d, est, err := c.Decide(ctx, streamID, spec)
//	err = c.Observe(ctx, streamID, alert.Feedback{Decision: d, Latency: measured})
//
// JSON carries every float64 bit-exactly, so a stream driven through this
// client makes byte-identical decisions to one driven against
// alert.Server in-process (cmd/alertload -addr pins this).
//
// Overload: the server sheds load at its admission gate with 429 (queue
// full or Spec deadline expired while queued) and 503 (draining), both
// carrying Retry-After. Those surface as *client.OverloadError; with
// Options.MaxRetries > 0 the client retries them itself after the hinted
// backoff. Retrying is safe: a 429/503 is rejected before the request
// touches any stream state, so a retry never double-applies anything.
//
// Binary transport: when the server also listens on a binwire port
// (alertserve -binary-addr), set Options.BinaryAddr — or
// Options.PreferBinary to discover it from /v1/stats — and every
// data-plane call (Decide, Observe, DecideBatch, migration ops) rides a
// pooled, pipelined binary connection instead of HTTP/JSON. Decisions are
// byte-identical over either transport, and overload error frames carry
// the same retry_after_ms hint, fed through the same retry loop.
package client

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/membership"
	"github.com/alert-project/alert/internal/netserve"
)

// Options configure a Client. The zero value selects a pooled transport
// with keep-alive and no automatic retries.
type Options struct {
	// HTTPClient overrides the underlying HTTP client (for timeouts,
	// custom transports, or tests). Nil builds one with a dedicated pooled
	// transport.
	HTTPClient *http.Client
	// MaxRetries is how many times a request rejected with 429/503 is
	// retried after the server's Retry-After hint. 0 disables retries:
	// overload surfaces as *OverloadError.
	MaxRetries int
	// BackoffBase is the wait before the first retry when the server sent
	// no usable Retry-After hint; each subsequent hintless retry doubles it
	// (capped by BackoffCap). A usable hint overrides the schedule for that
	// attempt. 0 means 10ms.
	BackoffBase time.Duration
	// BackoffCap bounds every retry wait, hinted or not, so a misconfigured
	// server cannot stall a caller that set no context deadline. 0 means 2s.
	BackoffCap time.Duration
	// BackoffSeed seeds the deterministic jitter applied to every wait
	// (equal-jitter: the second half of the wait is uniformly random).
	// Clients with different seeds desynchronize their retries instead of
	// stampeding the server in lockstep; tests pick a seed to make retry
	// timing reproducible. 0 selects a fixed default seed.
	BackoffSeed int64
	// BinaryAddr, when set, routes the data-plane calls (Decide, Observe,
	// DecideBatch, and the stream migration ops) over the binwire TCP
	// transport at this host:port instead of HTTP/JSON. Overload and
	// retry semantics are identical on both transports; the control-plane
	// reads (Stats, Streams, Membership) always use HTTP.
	BinaryAddr string
	// PreferBinary discovers the server's advertised binary listener from
	// GET /v1/stats on first use and upgrades the data plane to it,
	// falling back to JSON silently when the server does not advertise
	// one. It lets cluster clients (client/cluster), which only know
	// members' HTTP addresses, find each member's binary listener on
	// their own. Ignored when BinaryAddr is set explicitly.
	PreferBinary bool
}

// Client talks to one front end. It is safe for concurrent use; all
// methods honor their context.
type Client struct {
	base        string
	hc          *http.Client
	ownedHC     bool
	maxRetries  int
	backoffBase time.Duration
	backoffCap  time.Duration

	// rng drives the retry jitter; mu serializes it (Decide et al. are
	// documented safe for concurrent use).
	mu  sync.Mutex
	rng *mathx.Rand

	// Binary transport state. binAddr is where the binary listener lives
	// ("" = none known); binSettled marks discovery as concluded — set at
	// construction for an explicit BinaryAddr (or no binary at all), and
	// after the first successful stats read for PreferBinary. bin is the
	// lazily built transport.
	preferBinary bool
	binMu        sync.Mutex
	binAddr      string
	binSettled   bool
	bin          *BinaryTransport
}

// New validates the base URL (e.g. "http://127.0.0.1:8372") and returns a
// ready client.
func New(baseURL string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", baseURL)
	}
	c := &Client{
		base:         strings.TrimRight(baseURL, "/"),
		hc:           opts.HTTPClient,
		maxRetries:   opts.MaxRetries,
		backoffBase:  opts.BackoffBase,
		backoffCap:   opts.BackoffCap,
		preferBinary: opts.PreferBinary,
		binAddr:      opts.BinaryAddr,
		binSettled:   opts.BinaryAddr != "" || !opts.PreferBinary,
	}
	if c.backoffBase <= 0 {
		c.backoffBase = 10 * time.Millisecond
	}
	if c.backoffCap <= 0 {
		c.backoffCap = 2 * time.Second
	}
	seed := opts.BackoffSeed
	if seed == 0 {
		seed = 1
	}
	c.rng = mathx.NewRand(seed)
	if c.hc == nil {
		// A dedicated transport so this client's connection pool is not
		// shared with (or limited by) http.DefaultTransport users. The
		// per-host idle limit is what makes a many-goroutine load
		// generator reuse connections instead of churning them.
		c.hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        128,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}}
		c.ownedHC = true
	}
	return c, nil
}

// Close releases idle connections. The client must not be used afterwards.
func (c *Client) Close() {
	if c.ownedHC {
		c.hc.CloseIdleConnections()
	}
	c.binMu.Lock()
	bin := c.bin
	c.bin = nil
	c.binMu.Unlock()
	if bin != nil {
		bin.Close()
	}
}

// binary returns the transport for the data-plane calls, or nil for the
// JSON path. Under PreferBinary the first call probes GET /v1/stats for
// an advertised binary listener; the outcome of a successful probe is
// cached for the client's lifetime (a server's transports are fixed at
// startup), while a failed probe — server unreachable — leaves discovery
// open so a client built before its server came up still upgrades.
func (c *Client) binary(ctx context.Context) *BinaryTransport {
	c.binMu.Lock()
	defer c.binMu.Unlock()
	if c.bin != nil {
		return c.bin
	}
	if !c.binSettled {
		st, err := c.Stats(ctx)
		if err != nil {
			return nil // transient; the JSON path will surface the error
		}
		c.binSettled = true
		c.binAddr = c.resolveBinaryAddr(st.BinaryAddr)
	}
	if c.binAddr == "" {
		return nil
	}
	c.bin = NewBinaryTransport(c.binAddr)
	return c.bin
}

// resolveBinaryAddr fixes up an advertised binary address whose host part
// is unspecified (a server listening on ":9001" advertises exactly that):
// the client substitutes the host it already reaches over HTTP.
func (c *Client) resolveBinaryAddr(addr string) string {
	if addr == "" {
		return ""
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	unspecified := host == ""
	if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		unspecified = true
	}
	if !unspecified {
		return addr
	}
	u, err := url.Parse(c.base)
	if err != nil || u.Hostname() == "" {
		return addr
	}
	return net.JoinHostPort(u.Hostname(), port)
}

// OverloadError is a 429/503 admission rejection: the server's queue was
// full, the request's deadline expired while queued, or the server is
// draining. RetryAfter carries the server's backoff hint.
type OverloadError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("client: server rejected request (%d %s): %s, retry after %s",
		e.StatusCode, http.StatusText(e.StatusCode), e.Message, e.RetryAfter)
}

// APIError is any other non-2xx response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Decide requests the configuration for the stream's next input.
func (c *Client) Decide(ctx context.Context, stream int, spec alert.Spec) (alert.Decision, alert.Estimate, error) {
	d, est, _, err := c.DecideServed(ctx, stream, spec)
	return d, est, err
}

// DecideServed is Decide plus the identity of the node that served the
// decision (the server's configured -node-id; empty for a standalone
// node). The chaos harness's single-ownership checker uses it to attribute
// every decision to a member without a second round trip.
func (c *Client) DecideServed(ctx context.Context, stream int, spec alert.Spec) (alert.Decision, alert.Estimate, string, error) {
	if bt := c.binary(ctx); bt != nil {
		var d alert.Decision
		var est alert.Estimate
		var node string
		err := c.withRetry(ctx, func(ctx context.Context) error {
			var err error
			d, est, node, err = bt.Decide(ctx, stream, spec)
			return err
		})
		return d, est, node, err
	}
	var out netserve.DecideResponse
	err := c.do(ctx, http.MethodPost, "/v1/decide",
		netserve.DecideRequest{Stream: stream, Spec: netserve.FromSpec(spec)}, &out)
	if err != nil {
		return alert.Decision{}, alert.Estimate{}, "", err
	}
	return out.Decision.ToDecision(), out.Estimate.ToEstimate(), out.NodeID, nil
}

// Observe reports a measurement for the stream. The server enqueues it
// before replying, so a subsequent Decide on the same stream (over this or
// any connection) sees the updated filter state.
func (c *Client) Observe(ctx context.Context, stream int, fb alert.Feedback) error {
	if bt := c.binary(ctx); bt != nil {
		return c.withRetry(ctx, func(ctx context.Context) error {
			return bt.Observe(ctx, stream, fb)
		})
	}
	return c.do(ctx, http.MethodPost, "/v1/observe",
		netserve.ObserveRequest{Stream: stream, Feedback: netserve.FromFeedback(fb)}, nil)
}

// DecideBatch dispatches the whole batch in one request; results come back
// in request order. Requests sharing a stream are served in batch order.
func (c *Client) DecideBatch(ctx context.Context, reqs []alert.BatchRequest) ([]alert.BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if bt := c.binary(ctx); bt != nil {
		var res []alert.BatchResult
		err := c.withRetry(ctx, func(ctx context.Context) error {
			var err error
			res, err = bt.DecideBatch(ctx, reqs)
			return err
		})
		return res, err
	}
	in := netserve.BatchRequest{Requests: make([]netserve.DecideRequest, len(reqs))}
	for i, r := range reqs {
		in.Requests[i] = netserve.DecideRequest{Stream: r.Stream, Spec: netserve.FromSpec(r.Spec)}
	}
	var out netserve.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/decide-batch", in, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("client: batch returned %d results for %d requests", len(out.Results), len(reqs))
	}
	res := make([]alert.BatchResult, len(out.Results))
	for i, r := range out.Results {
		res[i] = alert.BatchResult{
			Stream:   r.Stream,
			Decision: r.Decision.ToDecision(),
			Estimate: r.Estimate.ToEstimate(),
		}
	}
	return res, nil
}

// Stats fetches the server's counter snapshots.
func (c *Client) Stats(ctx context.Context) (netserve.StatsResponse, error) {
	var out netserve.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Membership fetches the node's live membership view — the addresses and
// lease states of every member the node knows, as maintained by its
// membership agent. Nodes running without membership (no -membership flag)
// answer 404, surfaced as *APIError; callers fall back to the static
// -peers soft state in Stats. The reply is decoded with the membership
// package's strict decoder, so a malformed view is an error here, never a
// silently partial member set.
func (c *Client) Membership(ctx context.Context) (membership.View, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, membership.Endpoint, nil, &raw); err != nil {
		return membership.View{}, err
	}
	v, err := membership.DecodeView(raw)
	if err != nil {
		return membership.View{}, fmt.Errorf("client: bad membership view from server: %w", err)
	}
	return v, nil
}

// Streams lists the server's live stream ids.
func (c *Client) Streams(ctx context.Context) ([]int, error) {
	var out netserve.StreamsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/streams", nil, &out); err != nil {
		return nil, err
	}
	return out.IDs, nil
}

// EvictStream releases the stream's server-side session. Evicting an
// unknown stream succeeds (it is a no-op server-side).
func (c *Client) EvictStream(ctx context.Context, stream int) error {
	if bt := c.binary(ctx); bt != nil {
		return c.withRetry(ctx, func(ctx context.Context) error {
			return bt.EvictStream(ctx, stream)
		})
	}
	return c.do(ctx, http.MethodDelete, "/v1/streams/"+strconv.Itoa(stream), nil, nil)
}

// ErrNoSession reports that an export found no session for the stream: the
// stream never materialized (or was already evicted), so there is no state
// to ship — the migration target can simply serve it fresh.
var ErrNoSession = errors.New("client: stream has no session")

// ExportStream drains, snapshots, and removes the stream's session on the
// server — the send side of a migration. It returns ErrNoSession (wrapped)
// when the stream has no session. The snapshot round-trips the wire as
// canonical binary bytes (base64 in JSON), so the restored session is
// bit-identical to the exported one.
func (c *Client) ExportStream(ctx context.Context, stream int) (alert.SessionSnapshot, error) {
	if bt := c.binary(ctx); bt != nil {
		var snap alert.SessionSnapshot
		err := c.withRetry(ctx, func(ctx context.Context) error {
			var err error
			snap, err = bt.ExportStream(ctx, stream)
			return err
		})
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound {
			return snap, fmt.Errorf("%w: stream %d", ErrNoSession, stream)
		}
		return snap, err
	}
	var out netserve.SnapshotResponse
	err := c.do(ctx, http.MethodGet, "/v1/streams/"+strconv.Itoa(stream)+"/snapshot", nil, &out)
	var snap alert.SessionSnapshot
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound {
			return snap, fmt.Errorf("%w: stream %d", ErrNoSession, stream)
		}
		return snap, err
	}
	blob, err := base64.StdEncoding.DecodeString(out.SnapshotB64)
	if err != nil {
		return snap, fmt.Errorf("client: bad snapshot encoding from server: %w", err)
	}
	if err := snap.UnmarshalBinary(blob); err != nil {
		return snap, fmt.Errorf("client: %w", err)
	}
	return snap, nil
}

// CheckpointStream snapshots the stream's session on the server WITHOUT
// removing it — the periodic-backup read behind crash recovery. It returns
// ErrNoSession (wrapped) when the stream has no session. Unlike
// ExportStream it is ungated server-side and keeps answering under
// overload and drain.
func (c *Client) CheckpointStream(ctx context.Context, stream int) (alert.SessionSnapshot, error) {
	if bt := c.binary(ctx); bt != nil {
		var snap alert.SessionSnapshot
		err := c.withRetry(ctx, func(ctx context.Context) error {
			var err error
			snap, err = bt.CheckpointStream(ctx, stream)
			return err
		})
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound {
			return snap, fmt.Errorf("%w: stream %d", ErrNoSession, stream)
		}
		return snap, err
	}
	var out netserve.SnapshotResponse
	err := c.do(ctx, http.MethodGet, "/v1/streams/"+strconv.Itoa(stream)+"/checkpoint", nil, &out)
	var snap alert.SessionSnapshot
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound {
			return snap, fmt.Errorf("%w: stream %d", ErrNoSession, stream)
		}
		return snap, err
	}
	blob, err := base64.StdEncoding.DecodeString(out.SnapshotB64)
	if err != nil {
		return snap, fmt.Errorf("client: bad snapshot encoding from server: %w", err)
	}
	if err := snap.UnmarshalBinary(blob); err != nil {
		return snap, fmt.Errorf("client: %w", err)
	}
	return snap, nil
}

// ImportStream restores an exported session under the given stream id on
// the server — the receive side of a migration. The server refuses (409,
// surfaced as *APIError) if it is already serving a session for the
// stream, and 503 while draining.
func (c *Client) ImportStream(ctx context.Context, stream int, snap alert.SessionSnapshot) error {
	if bt := c.binary(ctx); bt != nil {
		return c.withRetry(ctx, func(ctx context.Context) error {
			return bt.ImportStream(ctx, stream, snap)
		})
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	return c.do(ctx, http.MethodPut, "/v1/streams/"+strconv.Itoa(stream),
		netserve.ImportRequest{SnapshotB64: base64.StdEncoding.EncodeToString(blob)}, nil)
}

// Batch accumulates decide requests for one DecideBatch dispatch — the
// helper for callers that collect work across many streams before cutting
// a batch.
type Batch struct {
	reqs []alert.BatchRequest
}

// Add appends one request and returns its index in the eventual results.
func (b *Batch) Add(stream int, spec alert.Spec) int {
	b.reqs = append(b.reqs, alert.BatchRequest{Stream: stream, Spec: spec})
	return len(b.reqs) - 1
}

// Len reports the pending request count.
func (b *Batch) Len() int { return len(b.reqs) }

// Flush dispatches the accumulated batch and resets the builder. A nil
// result with nil error means the batch was empty.
func (b *Batch) Flush(ctx context.Context, c *Client) ([]alert.BatchResult, error) {
	reqs := b.reqs
	b.reqs = nil
	return c.DecideBatch(ctx, reqs)
}

// do runs one HTTP request with encode/decode and the overload retry loop.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding %s: %w", path, err)
		}
	}
	return c.withRetry(ctx, func(ctx context.Context) error {
		return c.once(ctx, method, path, body, out)
	})
}

// withRetry runs fn under the overload retry loop — the single place both
// transports get their backoff behavior from. Hintless rejections walk a
// capped exponential schedule; a usable Retry-After hint overrides the
// schedule for that attempt but not the schedule's growth. Every wait is
// equal-jittered so a fleet of identically configured clients spreads its
// retries instead of stampeding the gate in lockstep. Only *OverloadError
// retries: a 429/503 is rejected before the request touches any stream
// state, so a retry never double-applies anything.
func (c *Client) withRetry(ctx context.Context, fn func(context.Context) error) error {
	backoff := c.backoffBase
	for attempt := 0; ; attempt++ {
		err := fn(ctx)
		var oe *OverloadError
		if err == nil || attempt >= c.maxRetries || !errors.As(err, &oe) {
			return err
		}
		wait := oe.RetryAfter
		if wait <= 0 {
			// Missing or garbled hint: the server is still overloaded, so
			// back off on our own schedule rather than hammering it.
			wait = backoff
		}
		if wait > c.backoffCap {
			wait = c.backoffCap
		}
		wait = c.jitter(wait)
		if backoff < c.backoffCap {
			backoff *= 2
			if backoff > c.backoffCap {
				backoff = c.backoffCap
			}
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() {
		// Drain so the keep-alive connection returns to the pool.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if resp.StatusCode >= 300 {
		var e netserve.ErrorResponse
		json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			return &OverloadError{
				StatusCode: resp.StatusCode,
				Message:    e.Error,
				RetryAfter: retryAfterOf(resp, e),
			}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: e.Error}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s response: %w", path, err)
		}
	}
	return nil
}

// jitter equal-jitters a wait: the first half is kept, the second half is
// drawn uniformly, so the expected wait is 3d/4 and no two clients (with
// different seeds) retry in phase.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	half := d / 2
	return half + time.Duration(f*float64(half))
}

// retryAfterOf extracts the backoff hint, preferring the millisecond body
// field over the whole-second header. A missing or garbled hint returns 0,
// which means "no hint" — the retry loop substitutes its own exponential
// schedule rather than retrying immediately.
func retryAfterOf(resp *http.Response, e netserve.ErrorResponse) time.Duration {
	if e.RetryAfterMs > 0 {
		return time.Duration(e.RetryAfterMs) * time.Millisecond
	}
	s := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if s == "" {
		return 0
	}
	// RFC 9110 allows delay-seconds or an HTTP-date; accept both, and treat
	// anything unparseable (or nonsensical: negative, non-finite, absurdly
	// large) as no hint at all.
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		if secs <= 0 || secs != secs || secs > 3600 {
			return 0
		}
		return time.Duration(secs * float64(time.Second))
	}
	if at, err := http.ParseTime(s); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
