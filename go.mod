module github.com/alert-project/alert

go 1.21
