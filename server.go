package alert

import (
	"fmt"
	"runtime"
	"time"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/serve"
)

// Server is the concurrent front-end over the ALERT runtime: one shared
// immutable decision engine plus a sharded stream table holding a
// lightweight session — the stream's own Kalman filter state and decision
// cache, a few hundred bytes — for every inference stream. A Scheduler
// serves one stream (§3.6); a Server serves any number by pinning each
// stream id to one of N shards and applying that stream's Decide/Observe
// traffic to its session in submission order. Per-stream behaviour is
// identical to a dedicated Scheduler — regardless of how many streams share
// a shard — while aggregate throughput scales with shards and per-stream
// memory stays flat enough for millions of streams.
//
// Sessions are created on a stream's first request and live until
// EvictStream releases them; Stats reports the live stream count and the
// table's aggregate session bytes.
//
// All methods are safe for concurrent use by any number of goroutines.
type Server struct {
	prof *dnn.ProfileTable
	pool *serve.Pool
}

// ServerOptions configure a Server. The zero value profiles with the
// paper's defaults and uses one shard per CPU.
type ServerOptions struct {
	// Shards is the number of stream-table shards (worker goroutines);
	// 0 means GOMAXPROCS. Shards bound concurrency, not stream capacity.
	Shards int
	// QueueDepth is the per-shard FIFO capacity before submissions block;
	// 0 selects a small default.
	QueueDepth int
	// Scheduler options, resolved once into the server's shared decision
	// engine (every stream's session decides against the same engine).
	Options Options
}

// NewServer profiles the candidate models once and starts the shard pool.
// Callers should Close the server to stop its workers.
func NewServer(p *Platform, models []*Model, opts ServerOptions) (*Server, error) {
	prof, err := dnn.Profile(p, models)
	if err != nil {
		return nil, fmt.Errorf("alert: %w", err)
	}
	o, err := coreOptions(opts.Options)
	if err != nil {
		return nil, err
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	pool := serve.NewPool(prof, o, serve.Config{Shards: shards, QueueDepth: opts.QueueDepth})
	return &Server{prof: prof, pool: pool}, nil
}

// Shards returns the stream-table shard count.
func (s *Server) Shards() int { return s.pool.NumShards() }

// Streams returns the number of live per-stream sessions in the table.
func (s *Server) Streams() int { return s.pool.NumStreams() }

// EvictStream releases the stream's session, returning once the table has
// shrunk. Use it to bound memory when streams are short-lived: an idle
// stream otherwise keeps its few-hundred-byte session alive indefinitely.
// A stream that returns after eviction starts fresh from the initial filter
// state, exactly like a new stream.
func (s *Server) EvictStream(stream int) { s.pool.EvictStream(stream) }

// EvictIdle releases every session whose last Decide or Observe is older
// than maxAge and reports how many it evicted. Long-lived servers call it
// periodically (cmd/alertserve's -idle-evict flag does) so abandoned
// streams cannot grow the table forever; streams with traffic within
// maxAge are never touched.
func (s *Server) EvictIdle(maxAge time.Duration) int { return s.pool.EvictIdle(maxAge) }

// StreamIDs returns the ids of every live session, sorted ascending.
func (s *Server) StreamIDs() []int { return s.pool.StreamIDs() }

// SessionSnapshot is the serializable state of one stream's session: a
// flat, versioned value with a canonical binary encoding
// (MarshalBinary/UnmarshalBinary), the unit of stream migration and crash
// recovery. See internal/core for the format contract.
type SessionSnapshot = core.SessionSnapshot

// ExportStream drains the stream's pending traffic, snapshots its session,
// and atomically removes it from the table — the send side of a live
// migration. The second return is false when the stream has no session
// (nothing to ship; the stream can start fresh elsewhere). Traffic arriving
// after the export recreates the stream from the initial filter state, so
// callers migrating a stream stop routing to this server first.
func (s *Server) ExportStream(stream int) (SessionSnapshot, bool) {
	return s.pool.ExportStream(stream)
}

// SnapshotStream checkpoints the stream's session without removing it —
// the periodic-backup primitive behind crash recovery: a node that dies
// without a graceful export restarts its streams from their last
// checkpoints. The snapshot folds in everything submitted before the call,
// the session keeps serving, and the stream's idle-eviction clock is not
// refreshed. The second return is false when the stream has no session.
func (s *Server) SnapshotStream(stream int) (SessionSnapshot, bool) {
	return s.pool.SnapshotStream(stream)
}

// ImportStream restores an exported session under the given stream id — the
// receive side of a migration. The restored session continues the exported
// stream's decision sequence bit-for-bit, provided both servers were built
// from the same platform, candidate set, and options (callers verify this
// out of band; see StatsResponse.Platform/Models). It refuses a stream that
// already has a live session and snapshots that fail validation.
func (s *Server) ImportStream(stream int, snap SessionSnapshot) error {
	return s.pool.ImportStream(stream, snap)
}

// Models returns the profiled candidate set in index order.
func (s *Server) Models() []*Model { return s.prof.Models }

// Platform returns the platform the candidate set was profiled on.
func (s *Server) Platform() *Platform { return s.prof.Platform }

// PowerCaps returns the platform's cap ladder in watts.
func (s *Server) PowerCaps() []float64 { return s.prof.Caps }

// Decide selects the configuration for stream's next input, blocking until
// the stream's shard serves it.
func (s *Server) Decide(stream int, spec Spec) (Decision, Estimate) {
	d, est := s.pool.Decide(stream, spec)
	return Decision{
		Model:       d.Model,
		Cap:         d.Cap,
		CapW:        s.prof.Caps[d.Cap],
		PlannedStop: d.PlannedStop,
		Overhead:    d.Overhead,
	}, est
}

// Observe feeds a stream's measurement back into its shard's estimators.
// It returns without waiting for the update to be applied, but the update
// is ordered before any later Decide on the same stream.
func (s *Server) Observe(stream int, fb Feedback) {
	if out, ok := feedbackOutcome(s.prof, fb); ok {
		s.pool.Observe(stream, out)
	}
}

// BatchRequest is one element of a batched decision dispatch.
type BatchRequest struct {
	// Stream routes the request: requests sharing a stream are served in
	// batch order by that stream's shard; distinct streams run
	// concurrently.
	Stream int
	Spec   Spec
}

// BatchResult pairs a BatchRequest with its decision, in request order.
type BatchResult struct {
	Stream   int
	Decision Decision
	Estimate Estimate
}

// DecideBatch dispatches the batch across shards and blocks until every
// decision is in, returning results in request order.
func (s *Server) DecideBatch(reqs []BatchRequest) []BatchResult {
	if len(reqs) == 0 {
		return nil
	}
	inner := make([]serve.Request, len(reqs))
	for i, r := range reqs {
		inner[i] = serve.Request{Stream: r.Stream, Spec: r.Spec}
	}
	res := s.pool.DecideBatch(inner)
	out := make([]BatchResult, len(res))
	for i, r := range res {
		out[i] = BatchResult{
			Stream: reqs[i].Stream,
			Decision: Decision{
				Model:       r.Decision.Model,
				Cap:         r.Decision.Cap,
				CapW:        s.prof.Caps[r.Decision.Cap],
				PlannedStop: r.Decision.PlannedStop,
				Overhead:    r.Decision.Overhead,
			},
			Estimate: r.Estimate,
		}
	}
	return out
}

// XiEstimate reports the (mean, std) of the slowdown filter serving the
// stream, after draining that shard's queued work.
func (s *Server) XiEstimate(stream int) (mu, sigma float64) {
	return s.pool.XiEstimate(stream)
}

// ServerStats is a point-in-time view of a Server's throughput/latency
// counters (the alias keeps the type nameable outside the module).
type ServerStats = metrics.ServeSnapshot

// Stats snapshots the server's throughput/latency counters.
func (s *Server) Stats() ServerStats { return s.pool.Counters().Snapshot() }

// Close drains every shard and stops the workers; the server must not be
// used afterwards.
func (s *Server) Close() { s.pool.Close() }
